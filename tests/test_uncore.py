"""Uncore: cache hierarchy paths, write-allocate, CWF wake plumbing."""

from repro.cpu.cache import CacheConfig
from repro.cpu.core import AccessResult
from repro.cpu.prefetch import PrefetcherConfig
from repro.cpu.uncore import Uncore, UncoreConfig
from repro.util.events import EventQueue


class ScriptMemory:
    """Memory system double with controllable callbacks."""

    def __init__(self, events, accept=True, crit_delay=100, fill_delay=150):
        self.events = events
        self.accept = accept
        self.crit_delay = crit_delay
        self.fill_delay = fill_delay
        self.reads = []
        self.writes = []

    def issue_read(self, line_address, critical_word, core_id, is_prefetch,
                   on_critical, on_complete):
        if not self.accept:
            return False
        self.reads.append((line_address, critical_word, is_prefetch))
        now = self.events.now
        self.events.schedule(now + self.crit_delay,
                             lambda: on_critical(now + self.crit_delay))
        self.events.schedule(now + self.fill_delay,
                             lambda: on_complete(now + self.fill_delay))
        return True

    def issue_write(self, line_address, critical_word_tag, core_id):
        self.writes.append((line_address, critical_word_tag))
        return True

    def chip_activities(self, elapsed):
        return {}

    def bus_utilization(self, elapsed):
        return 0.0


def tiny_uncore(events, num_cores=1, accept=True, mshrs=4,
                path_latency=0, prefetch=False):
    config = UncoreConfig(
        l1=CacheConfig(name="L1", size_bytes=4 * 64 * 2, associativity=2),
        l2=CacheConfig(name="L2", size_bytes=16 * 64 * 4, associativity=4,
                       latency=10),
        mshr_capacity=mshrs,
        prefetcher=PrefetcherConfig(enabled=prefetch,
                                    confidence_threshold=2, degree=1,
                                    distance=1),
        dram_path_latency=path_latency)
    memory = ScriptMemory(events, accept=accept)
    return Uncore(num_cores, memory, events, config), memory


class TestHitPaths:
    def test_miss_then_l1_hit(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        woken = []
        result = uncore.access(0, False, 0x1000, woken.append)
        assert result.status == AccessResult.PENDING
        events.run(100)
        assert woken  # critical wake fired
        # After the fill the line is in L1.
        result = uncore.access(0, False, 0x1000, None)
        assert result.status == AccessResult.HIT

    def test_l2_hit_after_other_core_fetch(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, num_cores=2)
        uncore.access(0, False, 0x2000, lambda t: None)
        events.run(100)
        result = uncore.access(1, False, 0x2000, None)
        assert result.status == AccessResult.HIT
        assert result.complete_time == events.now + 10  # L2 latency

    def test_wake_time_includes_path_latency(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, path_latency=36)
        woken = []
        uncore.access(0, False, 0, woken.append)
        events.run(100)
        assert woken[0] == 100 + 36


class TestCriticalWake:
    def test_primary_wakes_before_fill(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        woken = []
        uncore.access(0, False, 0, woken.append)
        events.run_until(120)   # critical at 100, fill at 150
        assert woken == [100]
        assert uncore.mshrs.get(0) is not None   # fill still pending
        events.run(100)
        assert uncore.mshrs.get(0) is None

    def test_secondary_same_word_wakes_with_critical(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, num_cores=2)
        first, second = [], []
        uncore.access(0, False, 0x18, first.append)    # word 3
        uncore.access(1, False, 0x18, second.append)   # same word, merged
        events.run(300)
        assert first == [100]
        assert second == [100]
        assert len(memory.reads) == 1  # merged, not re-issued

    def test_secondary_other_word_waits_for_fill(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, num_cores=2)
        first, second = [], []
        uncore.access(0, False, 0x18, first.append)   # word 3
        uncore.access(1, False, 0x28, second.append)  # word 5, same line
        events.run(300)
        assert first == [100]
        assert second == [150]


class TestWrites:
    def test_write_miss_allocates_and_fetches(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        result = uncore.access(0, True, 0x40, None)
        assert result.status == AccessResult.PENDING
        assert memory.reads  # write-allocate fetch
        events.run(300)
        line = uncore.l2.peek(1)
        assert line is not None and line.dirty

    def test_dirty_l2_eviction_writes_back(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        # Fill one L2 set (4 ways, set 0 holds lines 0,16,32,48,...) with
        # dirty lines, then one more to force a dirty eviction.
        for i in range(5):
            uncore.access(0, True, i * 16 * 64, None)
            events.run(400)
        assert memory.writes, "dirty eviction should reach DRAM"

    def test_writeback_carries_critical_word_tag(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        # Fetch with critical word 5, dirty it, then evict.
        uncore.access(0, True, 0 * 16 * 64 + 5 * 8, None)
        events.run(400)
        for i in range(1, 5):
            uncore.access(0, True, i * 16 * 64, None)
            events.run(400)
        assert memory.writes[0] == (0, 5)


class TestBackPressure:
    def test_mshr_full_stalls(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, mshrs=1)
        assert uncore.access(0, False, 0x0, lambda t: None).status \
            == AccessResult.PENDING
        assert uncore.access(0, False, 0x4000, lambda t: None).status \
            == AccessResult.STALL

    def test_memory_reject_rolls_back_mshr(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, accept=False)
        result = uncore.access(0, False, 0x0, lambda t: None)
        assert result.status == AccessResult.STALL
        assert len(uncore.mshrs) == 0

    def test_writeback_overflow_retries(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        memory.issue_write_ok = True
        rejections = [3]
        real_issue = memory.issue_write

        def flaky(line, tag, core):
            if rejections[0] > 0:
                rejections[0] -= 1
                return False
            return real_issue(line, tag, core)

        memory.issue_write = flaky
        uncore._issue_writeback(1, 0, 0)
        events.run(100)
        assert memory.writes == [(1, 0)]


class TestPrefetchPath:
    def test_prefetches_issue_tagged(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, prefetch=True)
        for i in range(6):
            uncore.access(0, False, i * 64, lambda t: None)
            events.run_until(events.now + 200)
        events.run(200)
        assert any(is_pf for (_, _, is_pf) in memory.reads)

    def test_prefetch_to_cached_line_dropped(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events, prefetch=True)
        uncore.access(0, False, 0, lambda t: None)
        events.run(300)
        before = len(memory.reads)
        uncore._issue_prefetch(0, 0)   # line already in L2
        assert len(memory.reads) == before

    def test_demand_counter(self):
        events = EventQueue()
        uncore, memory = tiny_uncore(events)
        seen = []
        uncore.demand_miss_observer = (
            lambda c, line, w: seen.append((c, line, w)))
        uncore.access(0, False, 3 * 64 + 2 * 8, lambda t: None)
        assert seen == [(0, 3, 2)]
        assert uncore.dram_reads == 1
