"""Deeper CWF paths: non-aggregated bus, DL/RD pairs, drain interplay."""

from repro.core.cwf import CriticalWordMemory, CWFConfig, CWFPolicy, HeteroPair
from repro.dram.device import DRAMKind
from repro.util.events import EventQueue


def run_read(events, memory, line, word):
    log = {}
    assert memory.issue_read(line, word, 0, False,
                             lambda t: log.setdefault("crit", t),
                             lambda t: log.setdefault("done", t))
    guard = 0
    while "done" not in log:
        assert events.step()
        guard += 1
        assert guard < 300_000
    return log


class TestUnaggregatedBus:
    def test_reads_complete_per_channel_controllers(self):
        events = EventQueue()
        memory = CriticalWordMemory(
            events, CWFConfig(shared_command_bus=False))
        # Lines in different rows land on different bulk channels
        # (open-page mapping interleaves channels at row granularity).
        stride = memory.bulk_mapper.lines_per_row
        logs = [run_read(events, memory, line * stride, 0)
                for line in range(8)]
        assert all(entry["crit"] < entry["done"] for entry in logs)
        # Fast requests spread across the four per-channel controllers.
        done = [mc.stats.reads_done for mc in memory.fast_controllers]
        assert sum(done) == 8
        assert max(done) < 8

    def test_fast_decode_unique_without_sharing(self):
        events = EventQueue()
        memory = CriticalWordMemory(
            events, CWFConfig(shared_command_bus=False))
        seen = set()
        for line in range(4096):
            d = memory._fast_decode(line)
            key = (d.channel, d.rank, d.bank, d.row, d.column)
            assert key not in seen
            seen.add(key)


class TestPairs:
    def test_rd_pair_devices(self):
        events = EventQueue()
        memory = CriticalWordMemory(events, CWFConfig(pair=HeteroPair.RD))
        assert memory.config.bulk_device.kind is DRAMKind.DDR3
        log = run_read(events, memory, 3, 0)
        assert log["crit"] < log["done"]

    def test_rd_bulk_faster_than_rl_bulk(self):
        # DDR3 bulk (RD) completes fills faster than LPDDR2 bulk (RL).
        rd_events = EventQueue()
        rd = CriticalWordMemory(rd_events, CWFConfig(pair=HeteroPair.RD))
        rl_events = EventQueue()
        rl = CriticalWordMemory(rl_events, CWFConfig(pair=HeteroPair.RL))
        rd_log = run_read(rd_events, rd, 3, 0)
        rl_log = run_read(rl_events, rl, 3, 0)
        assert rd_log["done"] < rl_log["done"]

    def test_dl_critical_slower_than_rl_critical(self):
        # The DL fast side is close-page DDR3: it pays tRCD where
        # RLDRAM3 doesn't.
        dl_events = EventQueue()
        dl = CriticalWordMemory(dl_events, CWFConfig(pair=HeteroPair.DL))
        rl_events = EventQueue()
        rl = CriticalWordMemory(rl_events, CWFConfig(pair=HeteroPair.RL))
        dl_log = run_read(dl_events, dl, 3, 0)
        rl_log = run_read(rl_events, rl, 3, 0)
        assert rl_log["crit"] < dl_log["crit"]


class TestWriteReadInterplay:
    def test_reads_survive_write_bursts(self):
        events = EventQueue()
        memory = CriticalWordMemory(events, CWFConfig())
        for i in range(40):
            assert memory.issue_write(1000 + i, 0, 0)
        log = run_read(events, memory, 5, 0)
        # Under a full write drain the fast part may land exactly with
        # the bulk part, but never after it.
        assert log["crit"] <= log["done"]
        events.run(200_000)
        total_writes = sum(mc.stats.writes_done
                           for mc in memory.bulk_controllers)
        assert total_writes == 40

    def test_adaptive_tags_updated_only_by_writes(self):
        events = EventQueue()
        memory = CriticalWordMemory(
            events, CWFConfig(policy=CWFPolicy.ADAPTIVE))
        run_read(events, memory, 9, 4)     # read does NOT re-organise
        assert memory.fast_word(9) == 0
        memory.issue_write(9, critical_word_tag=4, core_id=0)
        assert memory.fast_word(9) == 4


class TestStatsConsistency:
    def test_fast_plus_slow_equals_demands(self):
        events = EventQueue()
        memory = CriticalWordMemory(events, CWFConfig())
        for line in range(12):
            run_read(events, memory, line, line % 8)
        stats = memory.stats
        assert (stats.critical_served_fast + stats.critical_served_slow
                == stats.demand_reads == 12)

    def test_bus_utilization_bounded(self):
        events = EventQueue()
        memory = CriticalWordMemory(events, CWFConfig())
        run_read(events, memory, 1, 0)
        util = memory.bus_utilization(max(1, events.now))
        assert 0.0 <= util <= 1.0
