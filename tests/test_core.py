"""Event-driven core model: fetch/retire arithmetic and ROB blocking."""

from repro.cpu.core import AccessResult, Core, CoreConfig, TraceRecord
from repro.util.events import EventQueue


class FakeUncore:
    """Scriptable memory: per-address fixed latency, or STALL count."""

    def __init__(self, events, latency=100, stalls=0):
        self.events = events
        self.latency = latency
        self.stalls_left = stalls
        self.accesses = []

    def access(self, core_id, is_write, address, wake):
        self.accesses.append((self.events.now, is_write, address))
        if self.stalls_left > 0:
            self.stalls_left -= 1
            return AccessResult(AccessResult.STALL)
        if is_write:
            return AccessResult(AccessResult.HIT, self.events.now + 1)
        if self.latency <= 2:
            return AccessResult(AccessResult.HIT,
                                self.events.now + self.latency)
        self.events.schedule(self.events.now + self.latency,
                             lambda w=wake: w(self.events.now))
        return AccessResult(AccessResult.PENDING)


def run_core(trace, latency=100, stalls=0, config=None):
    events = EventQueue()
    uncore = FakeUncore(events, latency=latency, stalls=stalls)
    core = Core(0, trace, uncore, events, config or CoreConfig())
    core.start()
    guard = 0
    while not core.finished:
        assert events.step(), "deadlock"
        guard += 1
        assert guard < 1_000_000
    return core, uncore


class TestComputeOnly:
    def test_pure_writes_retire_at_width(self):
        # 10 records x (gap 7 + 1 store) = 80 instructions, no stalls:
        # finish ~ 80/4 = 20 cycles.
        trace = [TraceRecord(gap=7, is_write=True, address=i * 64)
                 for i in range(10)]
        core, _ = run_core(trace)
        assert core.instructions == 80
        assert core.finish_time <= 25

    def test_ipc_capped_at_width(self):
        trace = [TraceRecord(gap=99, is_write=True, address=0)
                 for _ in range(5)]
        core, _ = run_core(trace)
        assert core.ipc() <= 4.0 + 1e-9


class TestLoadStalls:
    def test_single_load_latency_visible(self):
        trace = [TraceRecord(gap=0, is_write=False, address=0)]
        core, _ = run_core(trace, latency=500)
        # use_latency (10) rides on top of the 500-cycle wake.
        assert core.finish_time >= 500
        assert core.finish_time <= 520

    def test_serial_loads_sum(self):
        # Loads far apart in the trace (gap > ROB) cannot overlap.
        trace = [TraceRecord(gap=100, is_write=False, address=i * 4096)
                 for i in range(4)]
        core, _ = run_core(trace, latency=300)
        assert core.finish_time >= 4 * 300

    def test_independent_loads_overlap(self):
        # Loads close together overlap inside the 64-entry window:
        # 8 loads of 300 cycles must take far less than 8 * 300.
        trace = [TraceRecord(gap=2, is_write=False, address=i * 4096)
                 for i in range(8)]
        core, _ = run_core(trace, latency=300)
        assert core.finish_time < 8 * 300 * 0.5

    def test_rob_bounds_mlp(self):
        # 64-entry ROB with gap 0: at most 64 loads in flight; with
        # 1000-cycle latency, 128 loads take >= 2 "waves".
        trace = [TraceRecord(gap=0, is_write=False, address=i * 4096)
                 for i in range(128)]
        core, _ = run_core(trace, latency=1000)
        assert core.finish_time >= 2000

    def test_cache_hits_are_fast(self):
        trace = [TraceRecord(gap=3, is_write=False, address=0)
                 for _ in range(50)]
        core, _ = run_core(trace, latency=1)
        # ~200 instructions at ~IPC 2+: well under serialised misses.
        assert core.finish_time < 300


class TestStallRetry:
    def test_stalled_access_retries(self):
        trace = [TraceRecord(gap=0, is_write=False, address=0)]
        core, uncore = run_core(trace, latency=50, stalls=3)
        assert core.stall_retries == 3
        assert len(uncore.accesses) == 4
        assert core.finished

    def test_stalled_store_retries(self):
        trace = [TraceRecord(gap=0, is_write=True, address=0),
                 TraceRecord(gap=0, is_write=False, address=64)]
        core, _ = run_core(trace, latency=20, stalls=1)
        assert core.finished


class TestOutOfOrderArrivals:
    def test_late_head_blocks_retire_but_not_completion(self):
        events = EventQueue()

        class TwoLatency:
            def __init__(self):
                self.calls = 0

            def access(self, core_id, is_write, address, wake):
                self.calls += 1
                delay = 800 if self.calls == 1 else 50
                events.schedule(events.now + delay,
                                lambda w=wake: w(events.now))
                return AccessResult(AccessResult.PENDING)

        trace = [TraceRecord(gap=0, is_write=False, address=0),
                 TraceRecord(gap=0, is_write=False, address=4096)]
        core = Core(0, trace, TwoLatency(), events)
        core.start()
        while not core.finished:
            assert events.step()
        # Finish is governed by the slow head load, not the sum.
        assert 800 <= core.finish_time < 900


class TestBookkeeping:
    def test_counts(self):
        trace = [TraceRecord(gap=1, is_write=False, address=0),
                 TraceRecord(gap=1, is_write=True, address=64),
                 TraceRecord(gap=1, is_write=False, address=128)]
        core, _ = run_core(trace, latency=50)
        assert core.loads_issued == 2
        assert core.stores_issued == 1
        assert core.instructions == 6

    def test_empty_trace_finishes_immediately(self):
        events = EventQueue()
        core = Core(0, [], FakeUncore(events), events)
        core.start()
        assert core.finished
        assert core.ipc() == 0.0
