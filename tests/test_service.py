"""Tests for the simulation service: validation, store, scheduler
(coalescing, backpressure, restart resume, fault-injected retries),
and the HTTP front-end.

Most tests drive the :class:`JobScheduler` directly with a tiny config
(60 fetches, one benchmark, serial executor) so they stay fast and
deterministic; the HTTP tests bind a real ``ThreadingHTTPServer`` to an
ephemeral port and go through :class:`ServiceClient`, exactly like the
``repro submit`` CLI does.
"""

import json
import threading

import pytest

from repro.experiments.resilience import (
    FaultPlan,
    activate_fault_plan,
    deactivate_fault_plan,
)
from repro.experiments.runner import ExperimentConfig
from repro.service import (
    Job,
    JobScheduler,
    JobStore,
    JobValidationError,
    QueueFull,
    SchedulerStopped,
    ServiceClient,
    ServiceError,
    make_server,
    parse_request,
    spec_from_dict,
    spec_to_dict,
)
from repro.experiments.specs import RunSpec

READS = 60
SPEC_MCF_DDR3 = {"benchmark": "mcf", "memory": "ddr3"}


def make_config(tmp_path, **overrides) -> ExperimentConfig:
    kwargs = dict(target_dram_reads=READS, benchmarks=("mcf",),
                  cache_dir=str(tmp_path / "cache"))
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


def make_scheduler(tmp_path, start=True, recover=False,
                   config=None, **kwargs) -> JobScheduler:
    config = config if config is not None else make_config(tmp_path)
    store = JobStore(str(tmp_path / "jobs"))
    return JobScheduler(config, store=store, jobs=1, start=start,
                        recover=recover, **kwargs)


# ---------------------------------------------------------------------------
# Request validation
# ---------------------------------------------------------------------------


class TestValidation:
    def config(self):
        return ExperimentConfig(target_dram_reads=READS)

    def test_unknown_backend_answers_did_you_mean(self):
        with pytest.raises(JobValidationError, match="ddr3"):
            parse_request({"specs": [{"benchmark": "mcf",
                                      "memory": "ddr333"}]}, self.config())

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(JobValidationError, match="fig6"):
            parse_request({"experiment": "fig99"}, self.config())

    def test_unknown_benchmark(self):
        with pytest.raises(JobValidationError, match="unknown workload"):
            parse_request({"specs": [{"benchmark": "quake",
                                      "memory": "ddr3"}]}, self.config())

    def test_unknown_request_field(self):
        with pytest.raises(JobValidationError, match="unknown request"):
            parse_request({"spec": []}, self.config())

    def test_empty_job(self):
        with pytest.raises(JobValidationError, match="empty job"):
            parse_request({}, self.config())

    def test_bad_reads(self):
        with pytest.raises(JobValidationError, match="positive integer"):
            parse_request({"specs": [SPEC_MCF_DDR3], "reads": -5},
                          self.config())

    def test_unknown_runner(self):
        with pytest.raises(JobValidationError, match="unknown named runner"):
            parse_request({"specs": [{"benchmark": "mcf", "memory": "ddr3",
                                      "runner": "nope"}]}, self.config())

    def test_experiment_expands_specs(self):
        job = parse_request({"experiment": "fig3"}, self.config())
        assert len(job.entries) == 2  # FIG3_BENCHMARKS
        assert all(e.spec.runner == "criticality_fig3" for e in job.entries)

    def test_within_job_dedupe(self):
        job = parse_request({"specs": [SPEC_MCF_DDR3, SPEC_MCF_DDR3]},
                            self.config())
        assert len(job.entries) == 1


class TestSerialization:
    def test_spec_round_trip(self):
        spec = RunSpec("mcf", "rl", variant="x",
                       overrides=(("prefetcher_enabled", False),),
                       params=(("depth", 4),))
        # JSON turns tuples into lists; the round trip restores them.
        rebuilt = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert rebuilt == spec

    def test_job_round_trip(self, tmp_path):
        config = make_config(tmp_path)
        job = parse_request({"specs": [SPEC_MCF_DDR3], "tag": "t",
                             "reads": 99}, config)
        rebuilt = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert rebuilt.id == job.id
        assert rebuilt.reads == 99
        assert rebuilt.entries[0].spec == job.entries[0].spec

    def test_store_round_trip_and_unfinished(self, tmp_path):
        config = make_config(tmp_path)
        store = JobStore(str(tmp_path / "jobs"))
        job = parse_request({"specs": [SPEC_MCF_DDR3]}, config)
        store.save(job)
        assert store.load(job.id).id == job.id
        assert [j.id for j in store.unfinished()] == [job.id]
        job.state = "done"
        store.save(job)
        assert store.unfinished() == []

    def test_store_rejects_traversal_ids(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"))
        assert store.load("../../etc/passwd") is None


# ---------------------------------------------------------------------------
# Scheduler: coalescing, backpressure, restart, retries
# ---------------------------------------------------------------------------


class TestScheduler:
    def test_identical_submits_run_one_simulation(self, tmp_path):
        """N submits of the same spec while queued -> one simulation."""
        sched = make_scheduler(tmp_path, start=False)
        try:
            jobs = [sched.submit({"specs": [SPEC_MCF_DDR3]})
                    for _ in range(4)]
            # All but the first coalesce against the wanted-key map.
            assert jobs[0].coalesced_specs == 0
            assert all(job.coalesced_specs == 1 for job in jobs[1:])
            sched.start()
            finished = [sched.wait(job.id, timeout=120) for job in jobs]
            assert all(job.state == "done" for job in finished)
            assert sched.counters["simulated_specs"] == 1
            assert sched.counters["coalesced_specs"] == 3
            # Every waiter got the same underlying result.
            cycles = {job.results[0]["elapsed_cycles"] for job in finished}
            assert len(cycles) == 1
        finally:
            sched.shutdown()

    def test_backpressure_429_then_retry_succeeds(self, tmp_path):
        sched = make_scheduler(tmp_path, start=False, max_queue=2)
        try:
            sched.submit({"specs": [SPEC_MCF_DDR3]})
            sched.submit({"specs": [SPEC_MCF_DDR3]})
            with pytest.raises(QueueFull) as excinfo:
                sched.submit({"specs": [SPEC_MCF_DDR3]})
            assert excinfo.value.retry_after_s >= 1.0
            assert sched.counters["jobs_rejected"] == 1
            sched.start()
            # Once the queue drains, the retried submit is accepted and
            # serves straight from the now-warm cache.
            for job in list(sched.jobs()):
                sched.wait(job.id, timeout=120)
            retried = sched.submit({"specs": [SPEC_MCF_DDR3]})
            assert sched.wait(retried.id, timeout=120).state == "done"
            assert sched.counters["simulated_specs"] == 1
        finally:
            sched.shutdown()

    def test_restart_resumes_from_store_without_recompute(self, tmp_path):
        config = make_config(tmp_path)
        sched1 = make_scheduler(tmp_path, config=config)
        job = sched1.submit({"specs": [SPEC_MCF_DDR3]})
        done = sched1.wait(job.id, timeout=120)
        sched1.shutdown()
        assert sched1.counters["simulated_specs"] == 1

        # Forge the manifest a server killed mid-suite would leave:
        # same specs, still queued. The replacement server recovers it
        # and resolves every completed spec from the result cache.
        data = done.to_dict()
        data.update(id="j-resume0001", state="queued", results=[],
                    failures=[], table="", finished_unix=None)
        store = JobStore(str(tmp_path / "jobs"))
        store.save(Job.from_dict(data))

        sched2 = JobScheduler(config, store=store, jobs=1, recover=True)
        try:
            assert sched2.counters["jobs_recovered"] == 1
            resumed = sched2.wait("j-resume0001", timeout=120)
            assert resumed.state == "done"
            assert sched2.counters["simulated_specs"] == 0  # cache recall
            assert resumed.results[0]["elapsed_cycles"] == \
                done.results[0]["elapsed_cycles"]
        finally:
            sched2.shutdown()

    def test_injected_crash_retried_without_failing_job(self, tmp_path):
        config = make_config(tmp_path, retries=1)
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:1"))
        try:
            sched = make_scheduler(tmp_path, config=config)
            try:
                job = sched.submit({"specs": [SPEC_MCF_DDR3]})
                assert sched.wait(job.id, timeout=120).state == "done"
                metrics = sched.metrics()
                assert metrics["executor.resilience.retries"] == 1
                assert metrics["jobs"].get("failed") is None
            finally:
                sched.shutdown()
        finally:
            deactivate_fault_plan()

    def test_exhausted_spec_fails_job_not_server(self, tmp_path):
        activate_fault_plan(FaultPlan.parse("mcf/ddr3=crash:*"))
        try:
            sched = make_scheduler(tmp_path)
            try:
                job = sched.submit({"specs": [SPEC_MCF_DDR3]})
                failed = sched.wait(job.id, timeout=120)
                assert failed.state == "failed"
                assert failed.failures[0]["kind"] == "crash"
                # The scheduler thread survived; a clean job still runs.
                deactivate_fault_plan()
                ok = sched.submit({"specs": [SPEC_MCF_DDR3]})
                assert sched.wait(ok.id, timeout=120).state == "done"
            finally:
                sched.shutdown()
        finally:
            deactivate_fault_plan()

    def test_submit_after_drain_is_refused(self, tmp_path):
        sched = make_scheduler(tmp_path)
        sched.shutdown()
        with pytest.raises(SchedulerStopped):
            sched.submit({"specs": [SPEC_MCF_DDR3]})

    def test_concurrent_fig3_clients_byte_identical_tables(self, tmp_path):
        """The acceptance scenario: two clients, one simulation run."""
        sched = make_scheduler(tmp_path, start=False)
        try:
            first = sched.submit({"experiment": "fig3"})
            second = sched.submit({"experiment": "fig3"})
            spec_count = len(second.entries)
            assert spec_count == 2
            assert second.coalesced_specs == spec_count
            sched.start()
            first = sched.wait(first.id, timeout=300)
            second = sched.wait(second.id, timeout=300)
            assert first.state == second.state == "done"
            assert first.table and first.table == second.table
            assert sched.counters["simulated_specs"] == spec_count
        finally:
            sched.shutdown()


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    """A paused scheduler behind a live server on an ephemeral port."""
    sched = make_scheduler(tmp_path, start=False, max_queue=4)
    server = make_server(sched, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}",
                           timeout_s=10)
    try:
        yield sched, client
    finally:
        server.shutdown()
        server.server_close()
        sched.shutdown()
        thread.join(timeout=5)


class TestHTTP:
    def test_healthz_and_metrics(self, service):
        sched, client = service
        health = client.health()
        assert health["status"] == "ok"
        assert health["queue_limit"] == 4
        metrics = client.metrics()
        assert metrics["service.jobs_submitted"] == 0
        assert "cache.quarantined" in metrics

    def test_unknown_paths_404(self, service):
        _, client = service
        for path in ("/nope", "/v1/jobs/j-missing"):
            with pytest.raises(ServiceError) as excinfo:
                client._get(path)
            assert excinfo.value.status == 404

    def test_invalid_submit_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"specs": [{"benchmark": "mcf",
                                      "memory": "ddr333"}]})
        assert excinfo.value.status == 400
        assert "ddr3" in excinfo.value.body["error"]

    def test_submit_poll_complete(self, service):
        sched, client = service
        job = client.submit({"specs": [SPEC_MCF_DDR3], "tag": "t1"})
        assert job["state"] == "queued"
        sched.start()
        done = client.wait(job["id"], poll_s=0.05, timeout_s=120)
        assert done["state"] == "done"
        assert done["tag"] == "t1"
        assert done["results"][0]["label"] == "mcf/ddr3"

    def test_concurrent_http_submits_coalesce(self, service):
        sched, client = service
        results, errors = [], []

        def post():
            try:
                results.append(client.submit({"specs": [SPEC_MCF_DDR3]}))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=post) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        sched.start()
        finished = [client.wait(job["id"], poll_s=0.05, timeout_s=120)
                    for job in results]
        assert all(job["state"] == "done" for job in finished)
        assert client.metrics()["service.simulated_specs"] == 1

    def test_backpressure_429_retry_after(self, service):
        sched, client = service
        for _ in range(4):  # fill the queue (limit 4, scheduler paused)
            client.submit({"specs": [SPEC_MCF_DDR3]})
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"specs": [SPEC_MCF_DDR3]})
        assert excinfo.value.status == 429
        # The client-side retry loop honours Retry-After once the
        # scheduler starts draining the queue.
        sched.start()
        job = client.submit({"specs": [SPEC_MCF_DDR3]}, retries=20,
                            backoff_s=0.1)
        assert client.wait(job["id"], poll_s=0.05,
                           timeout_s=120)["state"] == "done"


# ---------------------------------------------------------------------------
# Manifest quarantine
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_corrupt_manifest_quarantined_not_fatal(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"))
        path = store.directory / "j-torn0001.json"
        path.write_text('{"id": "j-torn0001", "state": "queu')  # torn write
        assert store.load("j-torn0001") is None
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        assert store.counters["manifests_quarantined"] == 1
        # The quarantined file no longer matches the manifest glob, so
        # listings and restart recovery skip it without re-tripping.
        assert store.job_ids() == []
        assert store.unfinished() == []

    def test_non_dict_manifest_quarantined(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"))
        (store.directory / "j-list0001.json").write_text('[1, 2, 3]')
        assert store.load("j-list0001") is None
        assert (store.directory / "j-list0001.json.corrupt").exists()

    def test_schema_drift_manifest_quarantined(self, tmp_path):
        store = JobStore(str(tmp_path / "jobs"))
        (store.directory / "j-drift001.json").write_text(
            '{"schema": 99, "payload": "from-the-future"}')
        assert store.load("j-drift001") is None
        assert store.counters["manifests_quarantined"] == 1

    def test_healthy_manifest_untouched(self, tmp_path):
        config = make_config(tmp_path)
        store = JobStore(str(tmp_path / "jobs"))
        job = parse_request({"specs": [SPEC_MCF_DDR3]}, config)
        store.save(job)
        assert store.load(job.id).id == job.id
        assert store.counters["manifests_quarantined"] == 0

    def test_quarantine_count_in_metrics(self, tmp_path):
        sched = make_scheduler(tmp_path, start=False)
        try:
            assert sched.metrics()["service.manifests_quarantined"] == 0
            (sched.store.directory / "j-bad00001.json").write_text("{nope")
            sched.store.load("j-bad00001")
            assert sched.metrics()["service.manifests_quarantined"] == 1
        finally:
            sched.shutdown()


# ---------------------------------------------------------------------------
# Signal handling: graceful drain vs forced exit
# ---------------------------------------------------------------------------


SERVE_VICTIM = r"""
import sys, time
from repro.experiments.runner import ExperimentConfig
from repro.service import JobScheduler, JobStore, make_server, \
    serve_until_signal

state_dir, mode = sys.argv[1], sys.argv[2]
config = ExperimentConfig(target_dram_reads=60, benchmarks=("mcf",),
                          cache_dir=None)
sched = JobScheduler(config, store=JobStore(state_dir), jobs=1,
                     start=False)
if mode == "block":
    sched.shutdown = lambda: time.sleep(120)  # a drain that never ends
server = make_server(sched, port=0)
print("ready", server.server_address[1], flush=True)
sys.exit(serve_until_signal(server, sched))
"""


class TestServeSignals:
    def _spawn(self, tmp_path, mode):
        import os
        import subprocess
        import sys

        script = tmp_path / "victim.py"
        script.write_text(SERVE_VICTIM)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            __import__("pathlib").Path(__file__).resolve().parent.parent
            / "src")
        proc = subprocess.Popen(
            [sys.executable, str(script), str(tmp_path / "jobs"), mode],
            stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            env=env, text=True)
        line = proc.stdout.readline().split()
        assert line and line[0] == "ready"
        # Wait for the accept loop: a served /healthz means
        # serve_until_signal has installed its signal handlers, so a
        # SIGTERM sent now cannot race the default (kill) disposition.
        import time
        import urllib.request
        deadline = time.monotonic() + 30
        while True:
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{line[1]}/healthz", timeout=1).read()
                break
            except OSError:
                assert time.monotonic() < deadline, "server never came up"
                time.sleep(0.05)
        return proc

    def test_single_sigterm_drains_and_exits_zero(self, tmp_path):
        import signal

        proc = self._spawn(tmp_path, "clean")
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0

    def test_second_sigterm_forces_nonzero_exit(self, tmp_path):
        import signal
        import time

        from repro.service import FORCED_EXIT_CODE

        proc = self._spawn(tmp_path, "block")
        proc.send_signal(signal.SIGTERM)
        time.sleep(1.0)  # first handler fires; the drain is now stuck
        assert proc.poll() is None  # still draining (blocked)
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == FORCED_EXIT_CODE
