"""Crash-safe checkpoint/resume: format, quarantine, determinism.

The load-bearing guarantee: a run that dies mid-flight and resumes from
its last snapshot produces a :class:`SimResult` byte-identical to the
uninterrupted run — verified here in-process (manual save + resume),
through ``execute_spec`` (serial), and end-to-end through the parallel
executor with an injected ``ckptkill`` fault (the worker hard-exits
right after a snapshot lands; the retry resumes).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.resilience import FaultPlan
from repro.experiments.runner import ExperimentConfig
from repro.experiments.specs import RunSpec, execute_spec
from repro.sim.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    Checkpointer,
    checkpoint_every,
    checkpoint_path,
    load_checkpoint,
    read_header,
    run_benchmark_checkpointed,
)
from repro.sim.config import SimConfig
from repro.sim.system import SimulationSystem, prewarm_l2, run_benchmark
from repro.workloads.registry import create_workload

READS = 1200
EVERY = 400


def result_bytes(result) -> str:
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


def fresh_system(benchmark: str, config: SimConfig) -> SimulationSystem:
    """Mirror run_benchmark's setup with picklable (materialized) traces."""
    source = create_workload(benchmark)
    traces = [list(stream) for stream in source.streams(config)]
    system = SimulationSystem(config, traces, profile=source.profile)
    if source.profile is not None:
        prewarm_l2(system, source.profile)
    return system


@pytest.fixture()
def sim_config():
    return SimConfig(memory="rl", target_dram_reads=READS, seed=42)


@pytest.fixture()
def baseline(sim_config):
    return result_bytes(run_benchmark("mcf", sim_config))


# ---------------------------------------------------------------------------
# Format plumbing
# ---------------------------------------------------------------------------


def test_checkpoint_path_is_deterministic(tmp_path):
    a = checkpoint_path(tmp_path, "v8|mcf|rl|...")
    b = checkpoint_path(tmp_path, "v8|mcf|rl|...")
    assert a == b and a.name.startswith("ck-") and a.suffix == ".ckpt"
    assert a != checkpoint_path(tmp_path, "v8|mcf|ddr3|...")


def test_checkpoint_every_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKPOINT_EVERY", raising=False)
    assert checkpoint_every() == 1000
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "250")
    assert checkpoint_every() == 250
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "-3")
    assert checkpoint_every() == 1  # clamped to at least one read
    monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "soon")
    with pytest.raises(ValueError, match="REPRO_CHECKPOINT_EVERY"):
        checkpoint_every()


# ---------------------------------------------------------------------------
# Save / load roundtrip and resume determinism
# ---------------------------------------------------------------------------


def test_midrun_snapshot_resumes_byte_identical(tmp_path, sim_config,
                                                baseline):
    path = tmp_path / "mid.ckpt"
    system = fresh_system("mcf", sim_config)
    ckpt = Checkpointer(path, "key-1", benchmark="mcf", every_reads=EVERY)
    uninterrupted = system.run(checkpointer=ckpt)
    assert ckpt.saves >= 2
    uninterrupted.benchmark = "mcf"  # run() leaves the label to callers
    assert result_bytes(uninterrupted) == baseline

    header = read_header(path)
    assert header["version"] == CHECKPOINT_VERSION
    assert header["cache_key"] == "key-1"
    assert header["benchmark"] == "mcf"
    assert 0 < header["reads"] < READS

    restored, executed, loaded_header = load_checkpoint(
        path, expect_cache_key="key-1")
    assert loaded_header == header
    resumed = restored.resume_run(executed=executed)
    resumed.benchmark = "mcf"
    assert result_bytes(resumed) == baseline


def test_unpicklable_state_disables_checkpointer(tmp_path, sim_config,
                                                 baseline):
    system = fresh_system("mcf", sim_config)
    system._poison = lambda: None  # lambdas cannot pickle
    ckpt = Checkpointer(tmp_path / "never.ckpt", "key", every_reads=EVERY)
    result = system.run(checkpointer=ckpt)
    result.benchmark = "mcf"
    assert result_bytes(result) == baseline  # the run itself is unharmed
    assert ckpt.disabled and ckpt.saves == 0
    assert "lambda" in (ckpt.last_error or "").lower() \
        or "pickle" in (ckpt.last_error or "").lower()
    assert not (tmp_path / "never.ckpt").exists()


# ---------------------------------------------------------------------------
# Validation failures quarantine the file
# ---------------------------------------------------------------------------


def _valid_checkpoint(tmp_path, sim_config) -> str:
    path = tmp_path / "victim.ckpt"
    system = fresh_system("mcf", sim_config)
    Checkpointer(path, "key-1", benchmark="mcf",
                 every_reads=EVERY).save(system, executed=0)
    return path


def _assert_quarantined(path, match):
    with pytest.raises(CheckpointError, match=match):
        load_checkpoint(path, expect_cache_key="key-1")
    assert not path.exists()
    corrupt = path.with_suffix(path.suffix + ".corrupt")
    assert corrupt.exists()
    corrupt.unlink()


def test_garbage_header_quarantines(tmp_path, sim_config):
    path = _valid_checkpoint(tmp_path, sim_config)
    path.write_bytes(b"\xff\xfe not json\n rest")
    _assert_quarantined(path, "unreadable header")


def test_truncated_payload_quarantines(tmp_path, sim_config):
    path = _valid_checkpoint(tmp_path, sim_config)
    path.write_bytes(path.read_bytes()[:-200])
    _assert_quarantined(path, "truncated")


def test_flipped_payload_bit_quarantines(tmp_path, sim_config):
    path = _valid_checkpoint(tmp_path, sim_config)
    blob = bytearray(path.read_bytes())
    blob[-10] ^= 0x40
    path.write_bytes(bytes(blob))
    _assert_quarantined(path, "sha256 mismatch")


def test_version_mismatch_quarantines(tmp_path, sim_config):
    path = _valid_checkpoint(tmp_path, sim_config)
    header_line, _, payload = path.read_bytes().partition(b"\n")
    header = json.loads(header_line)
    header["version"] = CHECKPOINT_VERSION + 1
    path.write_bytes(json.dumps(header).encode() + b"\n" + payload)
    _assert_quarantined(path, "version")


def test_cache_key_mismatch_quarantines(tmp_path, sim_config):
    path = _valid_checkpoint(tmp_path, sim_config)
    with pytest.raises(CheckpointError, match="cache key mismatch"):
        load_checkpoint(path, expect_cache_key="some-other-spec")
    assert path.with_suffix(".ckpt.corrupt").exists()


# ---------------------------------------------------------------------------
# run_benchmark_checkpointed
# ---------------------------------------------------------------------------


def test_checkpointed_run_matches_plain_and_cleans_up(tmp_path, sim_config,
                                                      baseline):
    result = run_benchmark_checkpointed(
        "mcf", sim_config, "key-1", tmp_path, every_reads=EVERY)
    assert result_bytes(result) == baseline
    assert list(tmp_path.iterdir()) == []  # checkpoint deleted on success


def test_resume_from_orphaned_checkpoint(tmp_path, sim_config, baseline):
    # Orphan a mid-run snapshot, as a killed worker would.
    path = checkpoint_path(tmp_path, "key-1")
    system = fresh_system("mcf", sim_config)
    ckpt = Checkpointer(path, "key-1", benchmark="mcf", every_reads=EVERY,
                        first_mark=EVERY)
    for core in system.cores:
        core.start()
    executed = 0
    while system.uncore.dram_reads < EVERY + 50:
        assert system.events.step()
        executed += 1
        ckpt.maybe_save(system, executed)
    assert ckpt.saves >= 1 and path.exists()

    result = run_benchmark_checkpointed(
        "mcf", sim_config, "key-1", tmp_path, every_reads=EVERY)
    assert result_bytes(result) == baseline
    assert not path.exists()


def test_corrupt_checkpoint_falls_back_to_fresh_run(tmp_path, sim_config,
                                                    baseline):
    path = checkpoint_path(tmp_path, "key-1")
    path.write_bytes(b"torn write, no header")
    result = run_benchmark_checkpointed(
        "mcf", sim_config, "key-1", tmp_path, every_reads=EVERY)
    assert result_bytes(result) == baseline
    assert path.with_suffix(".ckpt.corrupt").exists()  # evidence kept


def test_active_telemetry_session_falls_back_to_plain_run(tmp_path,
                                                          sim_config,
                                                          baseline):
    from repro.telemetry.session import TelemetrySession, activate, deactivate

    activate(TelemetrySession())
    try:
        result = run_benchmark_checkpointed(
            "mcf", sim_config, "key-1", tmp_path, every_reads=EVERY)
    finally:
        deactivate()
    # Instrumented runs carry a telemetry blob; the simulation itself
    # must still match the baseline field for field.
    fields = dataclasses.asdict(result)
    fields.pop("telemetry", None)
    expected = json.loads(baseline)
    expected.pop("telemetry", None)
    assert json.dumps(fields, sort_keys=True) == json.dumps(
        expected, sort_keys=True)
    assert list(tmp_path.iterdir()) == []  # never checkpointed


# ---------------------------------------------------------------------------
# Pipeline integration: execute_spec and the retry path
# ---------------------------------------------------------------------------


def test_execute_spec_checkpoints_when_configured(tmp_path, baseline):
    spec = RunSpec("mcf", "rl")
    config = ExperimentConfig(target_dram_reads=READS, cache_dir=None,
                              checkpoint_dir=str(tmp_path),
                              checkpoint_every=EVERY)
    result = execute_spec(spec, config)
    assert result_bytes(result) == baseline
    assert list(tmp_path.iterdir()) == []


def test_kill_after_saves_parsing():
    plan = FaultPlan.parse("a/b=ckptkill;c/d=ckptkill:2:3;e/f=crash")
    assert plan.kill_after_saves("a/b", 1) == 1     # default ordinal
    assert plan.kill_after_saves("c/d", 1) == 3
    assert plan.kill_after_saves("c/d", 2) == 3     # times=2: both attempts
    assert plan.kill_after_saves("c/d", 3) is None  # budget exhausted
    assert plan.kill_after_saves("e/f", 1) is None  # wrong mode
    assert plan.kill_after_saves("x/y", 1) is None  # unplanned spec


def test_ckptkill_worker_resumes_byte_identical(tmp_path, baseline,
                                                monkeypatch):
    """End-to-end: the worker dies right after its first snapshot lands
    (a genuine BrokenProcessPool), the retry resumes from the checkpoint,
    and the delivered result is byte-identical to an uninterrupted run."""
    from repro.experiments.executor import ParallelExecutor

    spec = RunSpec("mcf", "rl")
    config = ExperimentConfig(target_dram_reads=READS, cache_dir=None,
                              checkpoint_dir=str(tmp_path),
                              checkpoint_every=EVERY, retries=2, jobs=2)
    monkeypatch.setenv("REPRO_FAULT_PLAN", "mcf/rl=ckptkill")
    executor = ParallelExecutor(config, jobs=2)
    results = executor.run([spec])
    assert executor.counters.get("resilience.failures.broken-pool") == 1
    assert result_bytes(results[spec]) == baseline
    assert list(tmp_path.iterdir()) == []
