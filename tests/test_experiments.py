"""Experiment runner, cache, and fast (non-simulation) experiments."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentTable,
    ResultCache,
    run_cached,
)
from repro.experiments.power_curves import figure_2
from repro.experiments.tables import table_1, table_2
from repro.sim.config import MemoryKind
from repro.sim.system import SimResult


class TestExperimentTable:
    def make(self):
        table = ExperimentTable("t1", "demo", ["benchmark", "value"])
        table.add(benchmark="a", value=1.0)
        table.add(benchmark="b", value=3.0)
        return table

    def test_column_and_mean(self):
        table = self.make()
        assert table.column("value") == [1.0, 3.0]
        assert table.mean("value") == pytest.approx(2.0)

    def test_format_contains_rows(self):
        text = self.make().format()
        assert "t1" in text and "demo" in text
        assert "1.000" in text and "3.000" in text


class TestResultCache:
    def make_result(self):
        return SimResult(
            benchmark="b", memory="ddr3", num_cores=8, elapsed_cycles=10,
            instructions=100, per_core_ipc=[1.0], dram_reads=5,
            dram_writes=1, demand_reads=5, avg_queue_latency=1.0,
            avg_core_latency=2.0, avg_critical_latency=3.0,
            avg_fill_latency=4.0, fast_service_fraction=0.5,
            bus_utilization=0.1, memory_power_mw=100.0,
            memory_power_by_family={"ddr3": 100.0}, l2_hit_rate=0.9,
            critical_distribution=[0.5] + [0.5 / 7] * 7)

    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = self.make_result()
        cache.put("key1", result)
        loaded = cache.get("key1")
        assert loaded is not None
        assert loaded.elapsed_cycles == 10
        assert loaded.memory_power_by_family == {"ddr3": 100.0}

    def test_key_mismatch_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("key1", self.make_result())
        assert cache.get("key2") is None

    def test_disabled_cache(self):
        cache = ResultCache(None)
        cache.put("k", self.make_result())
        assert cache.get("k") is None

    def test_run_cached_uses_cache(self, tmp_path):
        config = ExperimentConfig(target_dram_reads=100,
                                  benchmarks=("mcf",),
                                  cache_dir=str(tmp_path))
        calls = []

        def runner():
            calls.append(1)
            return self.make_result()

        a = run_cached("mcf", MemoryKind.DDR3, config, variant="test",
                       runner=runner)
        b = run_cached("mcf", MemoryKind.DDR3, config, variant="test",
                       runner=runner)
        assert len(calls) == 1
        assert a.elapsed_cycles == b.elapsed_cycles


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        expected = {"fig1a", "fig1b", "fig2", "fig3", "fig4", "fig6",
                    "fig7", "fig8", "fig9", "fig10", "fig11", "tab1",
                    "tab2", "sec611_random", "sec611_noprefetch",
                    "sec71", "sec72"}
        assert expected <= set(ALL_EXPERIMENTS)


class TestFastExperiments:
    def test_table_1(self):
        table = table_1()
        assert any(r["parameter"] == "Re-Order-Buffer" for r in table.rows)

    def test_table_2_matches_paper(self):
        table = table_2()
        by_param = {r["parameter"]: r for r in table.rows}
        assert by_param["tRC"]["ddr3"] == 50.0
        assert by_param["tRC"]["rldram3"] == 12.0
        assert by_param["tRC"]["lpddr2"] == 60.0
        assert by_param["tWTR"]["rldram3"] == 0.0

    def test_figure_2_shape(self):
        table = figure_2()
        first, last = table.rows[0], table.rows[-1]
        assert first["utilization"] == 0.0 and last["utilization"] == 1.0
        # RLDRAM3 floor far above the others at idle.
        assert first["rldram3_mw"] > 2 * first["ddr3_mw"]
        assert first["lpddr2_mw"] < first["ddr3_mw"]
        # Convergence: ratio shrinks with utilisation.
        assert (last["rldram3_mw"] / last["ddr3_mw"]
                < first["rldram3_mw"] / first["ddr3_mw"])
