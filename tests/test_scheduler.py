"""Scheduler policy helpers."""

from repro.dram.request import DecodedAddress, MemoryRequest, RequestKind
from repro.dram.scheduler import (
    priority_key,
    promote_aged_prefetches,
    select_oldest,
    select_row_hit,
)


def req(arrival=0, is_prefetch=False, promoted=False):
    r = MemoryRequest(kind=RequestKind.READ, address=0,
                      is_prefetch=is_prefetch,
                      decoded=DecodedAddress(0, 0, 0, 0, 0))
    r.arrival_time = arrival
    r.promoted = promoted
    return r


class TestPriorityKey:
    def test_demand_outranks_older_prefetch(self):
        demand = req(arrival=100)
        prefetch = req(arrival=0, is_prefetch=True)
        assert priority_key(demand) < priority_key(prefetch)

    def test_promoted_prefetch_competes_as_demand(self):
        promoted = req(arrival=0, is_prefetch=True, promoted=True)
        demand = req(arrival=50)
        assert priority_key(promoted) < priority_key(demand)

    def test_age_breaks_ties(self):
        older = req(arrival=10)
        newer = req(arrival=20)
        assert priority_key(older) < priority_key(newer)


class TestPromotion:
    def test_promotes_only_aged(self):
        young = req(arrival=900, is_prefetch=True)
        old = req(arrival=0, is_prefetch=True)
        count = promote_aged_prefetches([young, old], now=1000,
                                        age_threshold=500)
        assert count == 1
        assert old.promoted and not young.promoted

    def test_demands_untouched(self):
        demand = req(arrival=0)
        assert promote_aged_prefetches([demand], now=10_000,
                                       age_threshold=1) == 0
        assert not demand.promoted


class TestSelection:
    def test_select_oldest(self):
        a, b = req(arrival=5), req(arrival=3)
        assert select_oldest([a, b]) is b
        assert select_oldest([]) is None

    def test_select_row_hit_filters(self):
        a, b = req(arrival=5), req(arrival=3)
        chosen = select_row_hit([a, b], lambda r: r is a)
        assert chosen is a

    def test_select_row_hit_prefers_demand(self):
        prefetch = req(arrival=0, is_prefetch=True)
        demand = req(arrival=100)
        chosen = select_row_hit([prefetch, demand], lambda r: True)
        assert chosen is demand
