"""Analytic latency validation must pass exactly."""

from repro.dram.device import DDR3_DEVICE, LPDDR2_DEVICE, RLDRAM3_DEVICE
from repro.validate import ValidationCheck, validate_all, validate_device


class TestValidation:
    def test_all_checks_pass(self):
        checks = validate_all()
        failures = [str(c) for c in checks if not c.ok]
        assert not failures, "\n".join(failures)

    def test_covers_all_device_families(self):
        names = {c.name.split()[0] for c in validate_all()}
        assert names == {DDR3_DEVICE.part_number,
                         LPDDR2_DEVICE.part_number,
                         RLDRAM3_DEVICE.part_number}

    def test_open_page_devices_get_row_cases(self):
        checks = validate_device(DDR3_DEVICE)
        kinds = {c.name.split(" ", 1)[1] for c in checks}
        assert "row-hit read" in kinds
        assert "row-conflict read" in kinds

    def test_close_page_device_skips_row_cases(self):
        checks = validate_device(RLDRAM3_DEVICE)
        kinds = {c.name.split(" ", 1)[1] for c in checks}
        assert "row-hit read" not in kinds

    def test_check_str_flags(self):
        good = ValidationCheck("x", 5, 5)
        bad = ValidationCheck("x", 5, 6)
        assert good.ok and "OK" in str(good)
        assert not bad.ok and "FAIL" in str(bad)

    def test_rldram_unloaded_beats_ddr3(self):
        ddr = validate_device(DDR3_DEVICE)[0].measured_cycles
        rld = validate_device(RLDRAM3_DEVICE)[0].measured_cycles
        assert rld < ddr
