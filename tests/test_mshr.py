"""MSHR file: allocation, merging, split-arrival wake protocol."""

import pytest

from repro.cpu.mshr import MSHRFile


class TestAllocation:
    def test_allocate_and_get(self):
        f = MSHRFile(capacity=4)
        entry = f.allocate(10, critical_word=3, core_id=1)
        assert f.get(10) is entry
        assert entry.critical_word == 3
        assert len(f) == 1

    def test_capacity_stall(self):
        f = MSHRFile(capacity=1)
        assert f.allocate(1, 0, 0) is not None
        assert f.allocate(2, 0, 0) is None
        assert f.stalls == 1

    def test_duplicate_raises(self):
        f = MSHRFile(capacity=4)
        f.allocate(1, 0, 0)
        with pytest.raises(RuntimeError):
            f.allocate(1, 0, 0)

    def test_deallocate_rolls_back(self):
        f = MSHRFile(capacity=1)
        f.allocate(1, 0, 0)
        f.deallocate(1)
        assert f.allocate(2, 0, 0) is not None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(capacity=0)


class TestWakeProtocol:
    def test_primary_wakes_on_critical(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=0, core_id=0)
        woken = []
        entry.primary_waiters.append(woken.append)
        entry.critical_time = 100
        assert entry.wake_primaries(100) == 1
        assert woken == [100]
        assert not entry.primary_waiters

    def test_release_wakes_fill_waiters(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=0, core_id=0)
        woken = []
        entry.fill_waiters.append(lambda t: woken.append(("fill", t)))
        entry.complete_time = 200
        f.release(1, 200)
        assert woken == [("fill", 200)]
        assert f.get(1) is None

    def test_release_incomplete_raises(self):
        f = MSHRFile()
        f.allocate(1, critical_word=0, core_id=0)
        with pytest.raises(RuntimeError):
            f.release(1, 100)

    def test_release_wakes_stragglers(self):
        # Safety: a primary still blocked at release must not be lost.
        f = MSHRFile()
        entry = f.allocate(1, critical_word=0, core_id=0)
        woken = []
        entry.primary_waiters.append(woken.append)
        entry.complete_time = 300
        f.release(1, 300)
        assert woken == [300]


class TestMerge:
    def test_merge_same_word_joins_primaries(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=2, core_id=0)
        woken = []
        f.merge(entry, woken.append, is_prefetch=False, write_intent=False,
                word=2, now=50)
        assert len(entry.primary_waiters) == 1
        assert not woken

    def test_merge_same_word_after_arrival_wakes_now(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=2, core_id=0)
        entry.critical_time = 80
        woken = []
        f.merge(entry, woken.append, is_prefetch=False, write_intent=False,
                word=2, now=120)
        assert woken == [120]  # data buffered in the MSHR: immediate

    def test_merge_other_word_waits_for_fill(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=2, core_id=0)
        woken = []
        f.merge(entry, woken.append, is_prefetch=False, write_intent=False,
                word=5, now=50)
        assert len(entry.fill_waiters) == 1

    def test_merge_demotes_prefetch(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=0, core_id=0, is_prefetch=True)
        f.merge(entry, None, is_prefetch=False, write_intent=False)
        assert not entry.is_prefetch
        assert f.merges == 1

    def test_merge_accumulates_write_intent(self):
        f = MSHRFile()
        entry = f.allocate(1, critical_word=0, core_id=0)
        f.merge(entry, None, is_prefetch=True, write_intent=True)
        assert entry.write_intent
