"""The paper's weighted-speedup throughput metric (Section 5)."""

import pytest

from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import run_weighted_speedup


class TestWeightedSpeedup:
    def test_bounded_by_core_count(self):
        config = SimConfig(num_cores=2, target_dram_reads=300)
        ws = run_weighted_speedup("mcf", config)
        # Sharing memory can only slow a core down vs running alone
        # (modulo tiny prefetch-sharing effects), so WS <= N.
        assert 0 < ws <= 2.2

    def test_contention_lowers_weighted_speedup(self):
        light = SimConfig(num_cores=2, target_dram_reads=300)
        ws_light = run_weighted_speedup("gobmk", light)   # low bandwidth
        ws_heavy = run_weighted_speedup("stream", light)  # bandwidth hog
        # The bandwidth-bound workload suffers more from sharing.
        assert ws_heavy < ws_light + 0.3

    def test_faster_memory_raises_ws_ratio_consistency(self):
        config = SimConfig(num_cores=2, target_dram_reads=300)
        base = run_weighted_speedup("leslie3d",
                                    config.with_memory(MemoryKind.DDR3))
        rld = run_weighted_speedup("leslie3d",
                                   config.with_memory(MemoryKind.RLDRAM3))
        # Both normalise per-config IPC_alone, so the values are
        # comparable and should be same-ballpark.
        assert 0.5 < rld / base < 2.0
