"""The paper's weighted-speedup throughput metric (Section 5)."""

import pytest

from repro.energy.model import weighted_speedup
from repro.sim.config import MemoryKind, SimConfig
from repro.sim.system import run_weighted_speedup


class TestWeightedSpeedupMetric:
    """Exact arithmetic of sum_i IPC_shared_i / IPC_alone_i."""

    def test_exact_sum_of_ratios(self):
        assert weighted_speedup([1.0, 2.0], [2.0, 2.0]) == pytest.approx(1.5)

    def test_identical_ipcs_give_core_count(self):
        assert weighted_speedup([0.7] * 4, [0.7] * 4) == pytest.approx(4.0)

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0, 1.0], [1.0])

    def test_nonpositive_alone_ipc_rejected(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [0.0])

    def test_empty_is_zero(self):
        assert weighted_speedup([], []) == 0.0


class TestWeightedSpeedup:
    def test_single_core_is_self_relative(self):
        # With one core there is no sharing: IPC_shared == IPC_alone by
        # construction, so the metric collapses to exactly 1.0.
        config = SimConfig(num_cores=1, target_dram_reads=300)
        assert run_weighted_speedup("mcf", config) == pytest.approx(1.0)

    def test_deterministic_for_fixed_seed(self):
        config = SimConfig(num_cores=2, target_dram_reads=300)
        assert (run_weighted_speedup("mcf", config)
                == run_weighted_speedup("mcf", config))

    def test_bounded_by_core_count(self):
        config = SimConfig(num_cores=2, target_dram_reads=300)
        ws = run_weighted_speedup("mcf", config)
        # Sharing memory can only slow a core down vs running alone
        # (modulo tiny prefetch-sharing effects), so WS <= N.
        assert 0 < ws <= 2.2

    def test_contention_lowers_weighted_speedup(self):
        light = SimConfig(num_cores=2, target_dram_reads=300)
        ws_light = run_weighted_speedup("gobmk", light)   # low bandwidth
        ws_heavy = run_weighted_speedup("stream", light)  # bandwidth hog
        # The bandwidth-bound workload suffers more from sharing.
        assert ws_heavy < ws_light + 0.3

    def test_faster_memory_raises_ws_ratio_consistency(self):
        config = SimConfig(num_cores=2, target_dram_reads=300)
        base = run_weighted_speedup("leslie3d",
                                    config.with_memory(MemoryKind.DDR3))
        rld = run_weighted_speedup("leslie3d",
                                   config.with_memory(MemoryKind.RLDRAM3))
        # Both normalise per-config IPC_alone, so the values are
        # comparable and should be same-ballpark.
        assert 0.5 < rld / base < 2.0
