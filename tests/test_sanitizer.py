"""DRAM protocol sanitizer: clean real runs, tripped broken ones.

Two halves:

* The golden 6-cell kernel matrix (the PR-7 equivalence fixture) runs
  under ``REPRO_SANITIZE=1`` and must produce **zero** violations and
  SimResults byte-identical to ``tests/data/golden_kernel.json`` — the
  sanitizer observes, it never perturbs.
* A deliberately broken "toy controller" — the sanitizer's ``note_*``
  API driven directly with illegal command sequences — must trip every
  violation class in the catalogue (DESIGN.md §11), one rule per
  scenario, with no collateral reports.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import DDR3_DEVICE, RLDRAM3_DEVICE
from repro.dram.timing import DDR3_TIMING, RLDRAM3_TIMING, TimingSet
from repro.sanitizer import (
    MODE_COLLECT,
    MODE_OFF,
    MODE_STRICT,
    ControllerSanitizer,
    ProtocolViolation,
    SanitizerError,
    SanitizerReport,
    UncoreSanitizer,
    global_report,
    reset_global_report,
    sanitize_mode,
)
from repro.sanitizer.violations import MAX_STORED
from repro.sim.config import SimConfig
from repro.sim.system import run_benchmark
from repro.util.events import EventQueue

DDR3 = TimingSet(DDR3_TIMING)
RLD = TimingSet(RLDRAM3_TIMING)

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_kernel.json"
with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)


# ---------------------------------------------------------------------------
# Golden matrix under the sanitizer: zero violations, byte-identical
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cell", sorted(GOLDEN["results"]))
def test_sanitized_golden_cell_clean_and_identical(cell, monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    report = reset_global_report()
    try:
        benchmark, memory = cell.split("/")
        config = SimConfig(memory=memory,
                           target_dram_reads=GOLDEN["target_dram_reads"])
        result = run_benchmark(benchmark, config)
        assert report.clean, (
            f"{cell}: sanitizer flagged a real run as illegal: "
            f"{report.summary()}; first: "
            f"{[v.describe() for v in report.violations[:4]]}")
        mismatches = {
            field: (getattr(result, field), expected)
            for field, expected in GOLDEN["results"][cell].items()
            if getattr(result, field) != expected
        }
        assert not mismatches, (
            f"{cell}: sanitized run diverged from golden "
            f"(the sanitizer must never perturb results): {mismatches}")
    finally:
        reset_global_report()


def test_sanitizer_off_attaches_nothing():
    from repro.sim.system import SimulationSystem

    system = SimulationSystem(SimConfig(target_dram_reads=50), [[], []])
    assert system._san_report is None
    assert system.uncore._san is None


# ---------------------------------------------------------------------------
# Mode parsing
# ---------------------------------------------------------------------------


def test_sanitize_mode_parsing():
    for off in ("", "0", "off", "false", "no", "none", "OFF"):
        assert sanitize_mode(off) == MODE_OFF
    for strict in ("2", "strict", "raise", "STRICT"):
        assert sanitize_mode(strict) == MODE_STRICT
    for collect in ("1", "on", "collect", "yes"):
        assert sanitize_mode(collect) == MODE_COLLECT


def test_sanitize_mode_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert sanitize_mode() == MODE_OFF
    monkeypatch.setenv("REPRO_SANITIZE", "strict")
    assert sanitize_mode() == MODE_STRICT


# ---------------------------------------------------------------------------
# The broken toy controller: every rule in the catalogue, in isolation
# ---------------------------------------------------------------------------


def _sanitizer(device=DDR3_DEVICE, timing=DDR3, num_ranks=1):
    """A ControllerSanitizer over a real controller, with a fresh report."""
    events = EventQueue()
    channel = Channel(timing, num_data_buses=1, cmd_slots_per_cycle=1)
    mc = MemoryController(device=device, timing=timing, channel=channel,
                          num_ranks=num_ranks, events=events,
                          config=ControllerConfig(refresh_enabled=False))
    report = SanitizerReport()
    return ControllerSanitizer(mc, report), report


def _read(san, now, rank, bank, row):
    """A perfectly legal READ CAS notification."""
    start = now + san.t_rl
    san.note_cas(now, rank, bank, row, True, start, start + san.t_burst)


class TestBankRules:
    def test_act_on_active(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        san.note_act(20, 0, 0, row=2)
        assert report.counts == {"bank.act_on_active": 1}

    def test_act_timing(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        san.note_pre(DDR3.t_ras, 0, 0)          # legal, right at tRAS
        san.note_act(DDR3.t_rc - 20, 0, 0, row=2)  # inside the tRC window
        assert report.counts == {"bank.act_timing": 1}

    def test_act_in_refresh(self):
        san, report = _sanitizer()
        san.note_refresh(0, 0, until=500)
        san.note_act(100, 0, 0, row=1)          # refresh holds until 500
        assert report.counts == {"bank.act_in_refresh": 1}

    def test_cas_on_idle(self):
        san, report = _sanitizer()
        _read(san, 0, 0, 0, row=0)
        assert report.counts == {"bank.cas_on_idle": 1}

    def test_cas_row_mismatch(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        _read(san, DDR3.t_rcd, 0, 0, row=2)
        assert report.counts == {"bank.cas_row_mismatch": 1}

    def test_cas_timing(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        _read(san, DDR3.t_rcd - 24, 0, 0, row=1)  # before tRCD elapses
        assert report.counts == {"bank.cas_timing": 1}

    def test_pre_on_idle(self):
        san, report = _sanitizer()
        san.note_pre(0, 0, 0)
        assert report.counts == {"bank.pre_on_idle": 1}

    def test_pre_timing(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        san.note_pre(DDR3.t_ras - 19, 0, 0)     # before tRAS elapses
        assert report.counts == {"bank.pre_timing": 1}

    def test_housekeeping_pre_skips_scheduled_checks(self):
        """Off-bus precharges check only bank-level PRE legality."""
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=1)
        san.note_pre(DDR3.t_ras, 0, 0, scheduled=False)
        assert report.clean

    def test_access_busy_close_page(self):
        san, report = _sanitizer(device=RLDRAM3_DEVICE, timing=RLD)
        latency = RLD.t_rcd + RLD.t_rl
        san.note_access(0, 0, 0, False, latency, latency + RLD.t_burst)
        san.note_access(20, 0, 0, False,
                        20 + latency, 20 + latency + RLD.t_burst)
        assert report.counts == {"bank.access_busy": 1}


class TestRankRules:
    def test_trrd(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=0)
        san.note_act(8, 0, 1, row=0)            # tRRD=20 not elapsed
        assert report.counts == {"rank.trrd": 1}

    def test_tfaw_sliding_window(self):
        san, report = _sanitizer()
        for i in range(4):                       # legal: tRRD-spaced
            san.note_act(i * DDR3.t_rrd, 0, i, row=0)
        assert report.clean
        san.note_act(4 * DDR3.t_rrd, 0, 4, row=0)  # 5th ACT inside tFAW
        assert report.counts == {"rank.tfaw": 1}

    def test_cmd_powered_down(self):
        san, report = _sanitizer()
        san.note_power_down(0, 0)
        san.note_act(20, 0, 0, row=0)
        assert report.counts == {"rank.cmd_powered_down": 1}

    def test_cmd_before_wake(self):
        san, report = _sanitizer()
        san.note_power_down(0, 0)
        san.note_wake(20, 0, ready_at=100)
        san.note_act(40, 0, 0, row=0)           # exit not complete
        assert report.counts == {"rank.cmd_before_wake": 1}

    def test_power_down_open_banks(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=0)
        san.note_power_down(200, 0)
        assert report.counts == {"rank.power_down_open_banks": 1}

    def test_power_down_redundant(self):
        san, report = _sanitizer()
        san.note_power_down(0, 0)
        san.note_power_down(20, 0)
        assert report.counts == {"rank.power_down_redundant": 1}

    def test_wake_not_powered_down(self):
        san, report = _sanitizer()
        san.note_wake(0, 0, ready_at=10)
        assert report.counts == {"rank.wake_not_powered_down": 1}

    def test_refresh_open_banks(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=0)
        san.note_refresh(200, 0, until=500)
        assert report.counts == {"rank.refresh_open_banks": 1}

    def test_legal_powerdown_cycle_is_clean(self):
        san, report = _sanitizer()
        san.note_power_down(0, 0)
        san.note_wake(100, 0, ready_at=120)
        san.note_act(120, 0, 0, row=3)
        _read(san, 120 + DDR3.t_rcd, 0, 0, row=3)
        assert report.clean


class TestBusRules:
    def test_data_latency(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=0)
        start = DDR3.t_rcd + DDR3.t_rl + 12      # 12 cycles late
        san.note_cas(DDR3.t_rcd, 0, 0, 0, True, start, start + DDR3.t_burst)
        assert report.counts == {"bus.data_latency": 1}

    def test_data_conflict_two_ranks(self):
        """Overlapping bursts from two ranks on one bus (missing tRTRS)."""
        san, report = _sanitizer(num_ranks=2)
        san.note_act(0, 0, 0, row=0)
        san.note_act(8, 1, 0, row=0)
        _read(san, DDR3.t_rcd, 0, 0, row=0)      # burst [88, 104)
        _read(san, DDR3.t_rcd + 8, 1, 0, row=0)  # burst [96, 112): overlap
        assert report.counts == {"bus.data_conflict": 1}

    def test_data_burst_length(self):
        san, report = _sanitizer()
        san.note_act(0, 0, 0, row=0)
        start = DDR3.t_rcd + DDR3.t_rl
        san.note_cas(DDR3.t_rcd, 0, 0, 0, True, start,
                     start + DDR3.t_burst - 4)   # short burst
        assert report.counts == {"bus.data_burst": 1}

    def test_cmd_overflow(self):
        san, report = _sanitizer(num_ranks=2)
        san.note_act(0, 0, 0, row=0)
        san.note_act(2, 1, 0, row=0)             # same bus cycle (4 cycles)
        assert report.counts == {"bus.cmd_overflow": 1}


class TestUncoreRules:
    def test_read_double_issue(self):
        report = SanitizerReport()
        san = UncoreSanitizer(report)
        san.note_read_issued(0x40, 10)
        san.note_read_issued(0x40, 20)
        assert report.counts == {"uncore.read_double_issue": 1}

    def test_read_orphan_retire(self):
        report = SanitizerReport()
        san = UncoreSanitizer(report)
        san.note_read_retired(0x80, 30)
        assert report.counts == {"uncore.read_orphan_retire": 1}

    def test_read_unretired_only_when_drained(self):
        report = SanitizerReport()
        san = UncoreSanitizer(report)
        san.note_read_issued(0x40, 10)
        san.note_read_issued(0x80, 12)
        san.note_read_retired(0x40, 200)
        san.finalize(1000, queue_drained=False)  # abandoned fills are fine
        assert report.clean
        san.finalize(1000, queue_drained=True)
        assert report.counts == {"uncore.read_unretired": 1}


# ---------------------------------------------------------------------------
# Report machinery
# ---------------------------------------------------------------------------


def test_strict_mode_raises_on_first_violation():
    san, report = _sanitizer()
    report.strict = True
    with pytest.raises(SanitizerError) as excinfo:
        san.note_pre(0, 0, 0)
    assert excinfo.value.violation.rule == "bank.pre_on_idle"
    assert report.total == 1


def test_report_caps_stored_records_not_counts():
    report = SanitizerReport()
    for i in range(MAX_STORED + 44):
        report.record(ProtocolViolation(rule="bank.pre_on_idle", time=i,
                                        source="toy"))
    assert report.total == MAX_STORED + 44
    assert len(report.violations) == MAX_STORED
    assert report.counts["bank.pre_on_idle"] == MAX_STORED + 44


def test_report_merge_and_summary():
    report = SanitizerReport()
    report.merge({"rank.trrd": 2, "bus.cmd_overflow": 1})
    report.merge({"rank.trrd": 1})
    assert report.total == 4
    assert report.summary() == {
        "total": 4,
        "by_rule": {"bus.cmd_overflow": 1, "rank.trrd": 3},
        "stored": 0,
    }


def test_violation_describe_and_to_dict():
    violation = ProtocolViolation(
        rule="bank.cas_timing", time=42, source="mc0", rank=1, bank=3,
        command="READ row=7", conflict="ACT@30", detail="x")
    text = violation.describe()
    assert "[bank.cas_timing]" in text and "mc0/rank1/bank3" in text
    assert violation.to_dict()["rule"] == "bank.cas_timing"


def test_reset_global_report_installs_fresh():
    first = reset_global_report()
    first.record(ProtocolViolation(rule="r", time=0, source="s"))
    second = reset_global_report(strict=True)
    assert global_report() is second
    assert second.clean and second.strict
    reset_global_report()
