"""Tests for the deterministic event queue."""

import pytest

from repro.util.events import EventQueue


def test_events_run_in_time_order():
    q = EventQueue()
    log = []
    q.schedule(10, lambda: log.append("b"))
    q.schedule(5, lambda: log.append("a"))
    q.schedule(20, lambda: log.append("c"))
    q.run()
    assert log == ["a", "b", "c"]
    assert q.now == 20


def test_ties_break_by_insertion_order():
    q = EventQueue()
    log = []
    for name in "abcd":
        q.schedule(7, lambda n=name: log.append(n))
    q.run()
    assert log == ["a", "b", "c", "d"]


def test_schedule_in_past_rejected():
    q = EventQueue()
    q.schedule(5, lambda: None)
    q.step()
    with pytest.raises(ValueError):
        q.schedule(3, lambda: None)


def test_cancelled_events_are_skipped():
    q = EventQueue()
    log = []
    event = q.schedule(5, lambda: log.append("x"))
    q.schedule(6, lambda: log.append("y"))
    event.cancel()
    q.run()
    assert log == ["y"]


def test_schedule_after_uses_current_time():
    q = EventQueue()
    log = []
    q.schedule(10, lambda: q.schedule_after(5, lambda: log.append(q.now)))
    q.run()
    assert log == [15]


def test_run_until_advances_clock_without_events():
    q = EventQueue()
    q.run_until(100)
    assert q.now == 100


def test_run_until_executes_only_due_events():
    q = EventQueue()
    log = []
    q.schedule(5, lambda: log.append(5))
    q.schedule(50, lambda: log.append(50))
    q.run_until(10)
    assert log == [5]
    assert q.now == 10
    q.run()
    assert log == [5, 50]


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.schedule(1, lambda: None)
    q.schedule(2, lambda: None)
    assert len(q) == 2
    e1.cancel()
    assert len(q) == 1


def test_len_is_exact_through_mixed_operations():
    q = EventQueue()
    events = [q.schedule(t, lambda: None) for t in range(10)]
    assert len(q) == 10
    events[3].cancel()
    events[7].cancel()
    assert len(q) == 8
    q.step()
    assert len(q) == 7
    q.run()
    assert len(q) == 0


def test_double_cancel_does_not_corrupt_count():
    q = EventQueue()
    event = q.schedule(5, lambda: None)
    q.schedule(6, lambda: None)
    event.cancel()
    event.cancel()
    assert len(q) == 1


def test_cancel_after_execution_is_harmless():
    q = EventQueue()
    event = q.schedule(5, lambda: None)
    q.schedule(6, lambda: None)
    q.step()            # runs the t=5 event
    assert len(q) == 1
    event.cancel()      # too late; must not decrement the live count
    assert len(q) == 1
    assert q.step()
    assert len(q) == 0


def test_events_scheduled_during_execution():
    q = EventQueue()
    log = []

    def chain(n):
        log.append(n)
        if n < 3:
            q.schedule_after(1, lambda: chain(n + 1))

    q.schedule(0, lambda: chain(0))
    q.run()
    assert log == [0, 1, 2, 3]
    assert q.now == 3
