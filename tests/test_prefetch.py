"""Stride prefetcher training and issue behaviour."""

from repro.cpu.prefetch import PrefetcherConfig, StridePrefetcher


def train(pf, lines):
    out = []
    for line in lines:
        out.append(pf.observe(line))
    return out


class TestTraining:
    def test_needs_confidence_before_issuing(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=3))
        results = train(pf, [100, 101, 102])
        assert all(not r for r in results)

    def test_issues_after_confidence(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=2, distance=3))
        results = train(pf, [100, 101, 102, 103])
        assert results[-1] == [106, 107]

    def test_negative_stride(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=1, distance=2))
        results = train(pf, [200, 198, 196, 194])
        assert results[-1] == [190]

    def test_stride_change_resets(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=3))
        train(pf, [100, 101, 102, 103, 104])
        assert pf.observe(111) == []   # new stride (7): confidence resets
        assert pf.observe(118) == []   # stride 7 confidence 2 < 3
        assert pf.observe(125) != []   # now trusted

    def test_zero_stride_ignored(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2))
        results = train(pf, [100, 100, 100, 100])
        assert all(not r for r in results)

    def test_zero_stride_does_not_break_training(self):
        # Word-granular streams touch the same line several times before
        # moving on; the repeated observations must not reset confidence.
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=1, distance=1))
        seq = [100, 100, 101, 101, 102, 102, 103]
        results = train(pf, seq)
        assert any(r for r in results)


class TestScope:
    def test_streams_tracked_per_region(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=1, distance=1))
        # Two interleaved streams in distant regions train independently.
        a, b = 1000, 50_000
        issued = []
        for i in range(5):
            issued += pf.observe(a + i)
            issued += pf.observe(b + 2 * i)
        assert any(x > 50_000 for x in issued)
        assert any(x < 2000 for x in issued)

    def test_table_eviction(self):
        pf = StridePrefetcher(PrefetcherConfig(table_size=2))
        pf.observe(0)
        pf.observe(10_000)
        pf.observe(20_000)
        assert len(pf._table) == 2

    def test_disabled(self):
        pf = StridePrefetcher(PrefetcherConfig(enabled=False))
        assert train(pf, [1, 2, 3, 4, 5]) == [[]] * 5

    def test_never_negative_lines(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=2, distance=4))
        for r in train(pf, [10, 8, 6, 4, 2, 0]):
            assert all(line >= 0 for line in r)

    def test_counters(self):
        pf = StridePrefetcher(PrefetcherConfig(confidence_threshold=2,
                                               degree=2))
        train(pf, [100, 101, 102, 103, 104])
        assert pf.trained >= 1
        assert pf.issued >= 2
