"""Trace file I/O round trips and validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import TraceRecord
from repro.workloads.synthetic import TraceGenerator
from repro.workloads.profiles import profile_for
from repro.workloads.trace import (
    load_multi_trace,
    load_trace,
    save_multi_trace,
    save_trace,
    trace_from_string,
    trace_stats,
    trace_to_string,
)

records_strategy = st.lists(
    st.builds(TraceRecord,
              gap=st.integers(min_value=0, max_value=10_000),
              is_write=st.booleans(),
              address=st.integers(min_value=0, max_value=(1 << 40) - 1)),
    max_size=200)


class TestRoundTrip:
    @settings(max_examples=30)
    @given(records_strategy)
    def test_string_roundtrip(self, records):
        loaded, _ = trace_from_string(trace_to_string(records))
        assert loaded == records

    def test_file_roundtrip_with_metadata(self, tmp_path):
        path = tmp_path / "trace.txt"
        trace = TraceGenerator(profile_for("mcf"), 0).records(100)
        save_trace(trace, path, metadata={"benchmark": "mcf", "core": "0"})
        loaded, meta = load_trace(path)
        assert loaded == trace
        assert meta == {"benchmark": "mcf", "core": "0"}

    def test_loaded_trace_runs(self, tmp_path):
        from repro.sim.config import SimConfig
        from repro.sim.system import SimulationSystem
        path = tmp_path / "trace.txt"
        save_trace(TraceGenerator(profile_for("mcf"), 0).records(50), path)
        loaded, _ = load_trace(path)
        system = SimulationSystem(SimConfig(num_cores=1), [loaded])
        result = system.run()
        assert result.instructions == sum(r.gap + 1 for r in loaded)


class TestMultiTrace:
    def _capture(self):
        return [TraceGenerator(profile_for("mcf"), core).records(20)
                for core in range(3)]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "multi.trace"
        traces = self._capture()
        save_multi_trace(traces, path, metadata={"benchmark": "mcf"})
        loaded, meta = load_multi_trace(path)
        assert loaded == traces
        assert meta["benchmark"] == "mcf"
        assert meta["cores"] == "3"
        assert meta["records"] == str(sum(len(t) for t in traces))

    def test_legacy_reader_flattens_sections(self, tmp_path):
        path = tmp_path / "multi.trace"
        traces = self._capture()
        save_multi_trace(traces, path)
        flat, _ = load_trace(path)
        assert flat == [r for t in traces for r in t]

    def test_single_core_file_loads_as_one_section(self, tmp_path):
        path = tmp_path / "single.trace"
        trace = self._capture()[0]
        save_trace(trace, path)
        sections, _ = load_multi_trace(path)
        assert sections == [trace]

    def test_reserved_metadata_keys_rejected(self):
        import io
        for key in ("core", "cores", "records"):
            with pytest.raises(ValueError, match="reserved"):
                save_multi_trace([[]], io.StringIO(), metadata={key: "1"})

    def test_metadata_order_does_not_change_records(self):
        trace = self._capture()[0]
        forward = trace_to_string(trace, {"a": "1", "b": "2"})
        reverse = trace_to_string(trace, {"b": "2", "a": "1"})
        assert trace_from_string(forward)[0] == trace_from_string(reverse)[0]
        assert (trace_from_string(forward)[1]
                == trace_from_string(reverse)[1] == {"a": "1", "b": "2"})

    def test_save_is_deterministic(self, tmp_path):
        traces = self._capture()
        first, second = tmp_path / "a.trace", tmp_path / "b.trace"
        save_multi_trace(traces, first, metadata={"benchmark": "mcf"})
        save_multi_trace(traces, second, metadata={"benchmark": "mcf"})
        assert first.read_bytes() == second.read_bytes()


class TestValidation:
    def test_rejects_wrong_header(self):
        with pytest.raises(ValueError, match="not a repro trace"):
            trace_from_string("nonsense\n1 R 0x0\n")

    def test_rejects_malformed_record(self):
        with pytest.raises(ValueError):
            trace_from_string("# repro-trace v1\n1 X 0x0\n")

    def test_malformed_record_names_the_line(self):
        with pytest.raises(ValueError, match="line 4"):
            trace_from_string(
                "# repro-trace v1\n# benchmark=mcf\n1 R 0x40\n1 R\n")

    def test_unparseable_integers_name_the_line(self):
        with pytest.raises(ValueError, match="line 2.*decimal integer"):
            trace_from_string("# repro-trace v1\nxx R 0x40\n")
        with pytest.raises(ValueError, match="line 3"):
            trace_from_string("# repro-trace v1\n1 R 0x40\n1 W 0xZZ\n")

    def test_rejects_truncated_records(self):
        text = ("# repro-trace v1\n# cores=1\n# records=5\n"
                "# core=0\n1 R 0x40\n")
        with pytest.raises(ValueError, match="truncated.*records=5"):
            trace_from_string(text)

    def test_rejects_missing_core_section(self):
        text = "# repro-trace v1\n# cores=2\n# records=1\n# core=0\n1 R 0x0\n"
        with pytest.raises(ValueError, match="truncated.*cores=2"):
            trace_from_string(text)

    def test_rejects_non_sequential_core_markers(self):
        text = "# repro-trace v1\n# core=0\n1 R 0x0\n# core=2\n1 R 0x0\n"
        with pytest.raises(ValueError, match="sequential"):
            trace_from_string(text)

    def test_ignores_blank_and_comment_lines(self):
        text = "# repro-trace v1\n\n# a comment\n3 W 0x40\n"
        records, _ = trace_from_string(text)
        assert records == [TraceRecord(gap=3, is_write=True, address=0x40)]

    def test_tolerates_trailing_whitespace(self):
        text = "# repro-trace v1\n3 W 0x40   \n  \n1 R 0x80\t\n"
        records, _ = trace_from_string(text)
        assert records == [TraceRecord(gap=3, is_write=True, address=0x40),
                           TraceRecord(gap=1, is_write=False, address=0x80)]


class TestStats:
    def test_empty(self):
        assert trace_stats([])["records"] == 0

    def test_summary(self):
        trace = [TraceRecord(2, False, 0), TraceRecord(4, True, 64)]
        stats = trace_stats(trace)
        assert stats["records"] == 2
        assert stats["instructions"] == 8
        assert stats["write_fraction"] == 0.5
        assert stats["distinct_lines"] == 2
        assert stats["mean_gap"] == 3.0
