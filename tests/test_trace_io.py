"""Trace file I/O round trips and validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.core import TraceRecord
from repro.workloads.synthetic import TraceGenerator
from repro.workloads.profiles import profile_for
from repro.workloads.trace import (
    load_trace,
    save_trace,
    trace_from_string,
    trace_stats,
    trace_to_string,
)

records_strategy = st.lists(
    st.builds(TraceRecord,
              gap=st.integers(min_value=0, max_value=10_000),
              is_write=st.booleans(),
              address=st.integers(min_value=0, max_value=(1 << 40) - 1)),
    max_size=200)


class TestRoundTrip:
    @settings(max_examples=30)
    @given(records_strategy)
    def test_string_roundtrip(self, records):
        loaded, _ = trace_from_string(trace_to_string(records))
        assert loaded == records

    def test_file_roundtrip_with_metadata(self, tmp_path):
        path = tmp_path / "trace.txt"
        trace = TraceGenerator(profile_for("mcf"), 0).records(100)
        save_trace(trace, path, metadata={"benchmark": "mcf", "core": "0"})
        loaded, meta = load_trace(path)
        assert loaded == trace
        assert meta == {"benchmark": "mcf", "core": "0"}

    def test_loaded_trace_runs(self, tmp_path):
        from repro.sim.config import SimConfig
        from repro.sim.system import SimulationSystem
        path = tmp_path / "trace.txt"
        save_trace(TraceGenerator(profile_for("mcf"), 0).records(50), path)
        loaded, _ = load_trace(path)
        system = SimulationSystem(SimConfig(num_cores=1), [loaded])
        result = system.run()
        assert result.instructions == sum(r.gap + 1 for r in loaded)


class TestValidation:
    def test_rejects_wrong_header(self):
        with pytest.raises(ValueError):
            trace_from_string("nonsense\n1 R 0x0\n")

    def test_rejects_malformed_record(self):
        with pytest.raises(ValueError):
            trace_from_string("# repro-trace v1\n1 X 0x0\n")

    def test_ignores_blank_and_comment_lines(self):
        text = "# repro-trace v1\n\n# a comment\n3 W 0x40\n"
        records, _ = trace_from_string(text)
        assert records == [TraceRecord(gap=3, is_write=True, address=0x40)]


class TestStats:
    def test_empty(self):
        assert trace_stats([])["records"] == 0

    def test_summary(self):
        trace = [TraceRecord(2, False, 0), TraceRecord(4, True, 64)]
        stats = trace_stats(trace)
        assert stats["records"] == 2
        assert stats["instructions"] == 8
        assert stats["write_fraction"] == 0.5
        assert stats["distinct_lines"] == 2
        assert stats["mean_gap"] == 3.0
