"""Controller edge cases: power-down, idle-row close, progress bounds."""

from repro.dram.channel import Channel
from repro.dram.controller import ControllerConfig, MemoryController
from repro.dram.device import DDR3_DEVICE, LPDDR2_DEVICE
from repro.dram.rank import PowerState
from repro.dram.request import DecodedAddress, MemoryRequest, RequestKind
from repro.dram.timing import DDR3_TIMING, LPDDR2_TIMING, TimingSet
from repro.util.events import EventQueue

LPD = TimingSet(LPDDR2_TIMING)
DDR3 = TimingSet(DDR3_TIMING)


def make(device=LPDDR2_DEVICE, timing=LPD, **cfg):
    events = EventQueue()
    channel = Channel(timing)
    config = ControllerConfig(**cfg)
    mc = MemoryController(device=device, timing=timing, channel=channel,
                          num_ranks=1, events=events, config=config)
    return events, mc


def read(bank=0, row=0, column=0):
    return MemoryRequest(kind=RequestKind.READ, address=0,
                         decoded=DecodedAddress(0, 0, bank, row, column))


def complete(events, req, limit=100_000):
    done = []
    req.on_complete = lambda t: done.append(t)
    steps = 0
    while not done:
        assert events.step()
        steps += 1
        assert steps < limit
    return done[0]


class TestAggressivePowerDown:
    def test_rank_sleeps_after_idle(self):
        events, mc = make(aggressive_powerdown=True,
                          powerdown_idle_threshold=200,
                          refresh_enabled=True)
        req = read(bank=0, row=1)
        mc.enqueue(req)
        complete(events, req)
        # Run well past the idle threshold; ticks fire on refresh cadence.
        events.run_until(events.now + 3 * LPD.t_refi)
        while events.peek_time() is not None and len(events) and \
                events.now < 4 * LPD.t_refi:
            if not events.step():
                break
        assert mc.ranks[0].power_down_entries >= 1

    def test_wakeup_penalty_applied(self):
        events, mc = make(aggressive_powerdown=True,
                          powerdown_idle_threshold=100,
                          refresh_enabled=False)
        first = read(bank=0, row=1)
        mc.enqueue(first)
        complete(events, first)
        # Idle past the threshold; the controller's idle tick (or a
        # manual push) puts the rank into power-down.
        t = events.now + 500
        events.run_until(t)
        rank = mc.ranks[0]
        if rank.power_state is not PowerState.POWER_DOWN:
            for bank in rank.banks:
                if bank.can_precharge(events.now) and bank.open_row is not None:
                    bank.precharge(events.now)
            assert rank.try_power_down(events.now, 100)
        assert rank.power_state is PowerState.POWER_DOWN
        second = read(bank=1, row=2)
        mc.enqueue(second)
        done = complete(events, second)
        idle = DDR3.t_rcd + DDR3.t_rl + DDR3.t_burst
        assert done - t >= LPD.t_pd_exit  # paid the exit latency


class TestProgressBounds:
    def test_earliest_progress_time_row_hit(self):
        events, mc = make(device=DDR3_DEVICE, timing=DDR3,
                          refresh_enabled=False)
        req = read(bank=0, row=1)
        mc.enqueue(req)
        complete(events, req)
        hit = read(bank=0, row=1, column=3)
        t = mc._earliest_progress_time(events.now, hit)
        assert t <= events.now + DDR3.t_ccd

    def test_earliest_progress_time_conflict(self):
        events, mc = make(device=DDR3_DEVICE, timing=DDR3,
                          refresh_enabled=False)
        req = read(bank=0, row=1)
        mc.enqueue(req)
        complete(events, req)
        conflict = read(bank=0, row=2)
        t = mc._earliest_progress_time(events.now, conflict)
        bank = mc.ranks[0].banks[0]
        assert t == max(bank.next_precharge, mc.ranks[0].wake_time)


class TestBusyAccounting:
    def test_busy_reflects_queues(self):
        events, mc = make(refresh_enabled=False)
        assert not mc.busy()
        req = read()
        mc.enqueue(req)
        assert mc.busy()
        complete(events, req)
        assert not mc.busy()

    def test_finalize_folds_tallies(self):
        events, mc = make(refresh_enabled=False)
        req = read()
        mc.enqueue(req)
        complete(events, req)
        mc.finalize()
        assert mc.ranks[0].tally.total() == events.now
