"""HMC critical-data-first extension (paper Sec 10 future work)."""

from repro.core.hmc import (
    HMC_HF_DEVICE,
    HMC_HF_TIMING,
    HMC_LP_DEVICE,
    build_hmc_memory,
)
from repro.core.cwf import CWFPolicy
from repro.sim.config import SimConfig
from repro.sim.system import SimulationSystem
from repro.util.events import EventQueue
from repro.workloads.profiles import profile_for
from repro.workloads.synthetic import generate_core_trace


class TestDevices:
    def test_hf_is_faster(self):
        assert HMC_HF_TIMING.t_rc < HMC_LP_DEVICE.timing.t_rc
        assert HMC_HF_TIMING.t_rl < HMC_LP_DEVICE.timing.t_rl

    def test_geometry_consistent(self):
        for dev in (HMC_HF_DEVICE, HMC_LP_DEVICE):
            bits = (dev.num_banks * dev.num_rows * dev.num_cols
                    * dev.data_width_bits)
            assert bits == dev.capacity_mbit * 1024 * 1024


class TestMemory:
    def test_build_and_read(self):
        events = EventQueue()
        memory = build_hmc_memory(events)
        assert memory.config.fast_device is HMC_HF_DEVICE
        assert memory.config.bulk_device is HMC_LP_DEVICE
        log = {}
        ok = memory.issue_read(100, 0, 0, False,
                               lambda t: log.setdefault("crit", t),
                               lambda t: log.setdefault("done", t))
        assert ok
        guard = 0
        while "done" not in log:
            assert events.step()
            guard += 1
            assert guard < 100_000
        assert log["crit"] < log["done"]
        assert memory.stats.critical_served_fast == 1

    def test_end_to_end_speedup_structure(self):
        """HMC-CDF behaves like RL: word-0 apps wake early."""
        config = SimConfig(num_cores=2, target_dram_reads=300)
        profile = profile_for("leslie3d")
        traces = [generate_core_trace(profile, c, 150) for c in range(2)]

        base_system = SimulationSystem(config, traces, profile=profile)
        base = base_system.run()

        hmc_system = SimulationSystem(config, traces, profile=profile)
        hmc_system.memory = build_hmc_memory(hmc_system.events)
        hmc_system.uncore.memory = hmc_system.memory
        hmc = hmc_system.run()

        assert hmc.fast_service_fraction > 0.6
        assert hmc.avg_critical_latency < base.avg_critical_latency

    def test_adaptive_policy_supported(self):
        events = EventQueue()
        memory = build_hmc_memory(events, policy=CWFPolicy.ADAPTIVE)
        memory.issue_write(55, critical_word_tag=6, core_id=0)
        assert memory.fast_word(55) == 6
