"""Structural tests for the simulation-backed experiment modules.

Tiny runs (150 fetches, 2 benchmarks) — shape of the tables, not the
numbers; the benchmark harness checks the quantitative claims.
"""

import pytest

from repro.experiments.controls import no_prefetcher, random_mapping
from repro.experiments.criticality import figure_3, figure_4
from repro.experiments.cwf_eval import figure_6, figure_7, figure_8, figure_9
from repro.experiments.energy_eval import figure_10, figure_11, section_7_2
from repro.experiments.homogeneous import figure_1a, figure_1b
from repro.experiments.page_placement import section_7_1
from repro.experiments.runner import ExperimentConfig


@pytest.fixture(scope="module")
def config(tmp_path_factory):
    return ExperimentConfig(
        target_dram_reads=150,
        benchmarks=("leslie3d", "mcf"),
        cache_dir=str(tmp_path_factory.mktemp("cache")))


class TestFigureShapes:
    def test_fig1a(self, config):
        table = figure_1a(config)
        assert [r["benchmark"] for r in table.rows] == \
            ["leslie3d", "mcf", "MEAN"]
        assert all(r["ddr3"] == 1.0 for r in table.rows)

    def test_fig1b(self, config):
        table = figure_1b(config)
        flavours = {r["flavour"] for r in table.rows}
        assert flavours == {"ddr3", "rldram3", "lpddr2"}
        for row in table.rows:
            assert row["total"] == pytest.approx(
                row["queue_latency"] + row["core_latency"])

    def test_fig3(self, config):
        table = figure_3(config, benchmarks=("leslie3d",), top_lines=3)
        ranked = [r for r in table.rows if r["line_rank"] >= 0]
        assert len(ranked) == 3
        for row in ranked:
            assert 0 <= row["dominant_word"] < 8
            assert 0 < row["dominant_fraction"] <= 1.0

    def test_fig4(self, config):
        table = figure_4(config)
        for row in table.rows[:-1]:
            assert 0.0 <= row["word0_fraction"] <= 1.0
            total = sum(row[f"w{i}"] for i in range(8))
            assert total == pytest.approx(1.0, abs=1e-6)

    def test_fig6_7_8_consistency(self, config):
        fig6 = figure_6(config)
        fig7 = figure_7(config)
        fig8 = figure_8(config)
        # Same suite, same order everywhere.
        names6 = [r["benchmark"] for r in fig6.rows]
        assert names6 == [r["benchmark"] for r in fig7.rows]
        assert names6 == [r["benchmark"] for r in fig8.rows]
        # leslie3d is word0-heavy; fig8 must say so.
        leslie = next(r for r in fig8.rows if r["benchmark"] == "leslie3d")
        assert leslie["fast_fraction"] > 0.6

    def test_fig9_columns(self, config):
        table = figure_9(config)
        for row in table.rows:
            for col in ("rl", "rl_ad", "rl_or", "rldram3"):
                assert row[col] > 0

    def test_fig10_energy_positive(self, config):
        table = figure_10(config)
        for row in table.rows:
            for col in ("rd", "rl", "dl", "rl_memory_energy"):
                assert row[col] > 0

    def test_fig11_rows(self, config):
        table = figure_11(config)
        assert len(table.rows) == 2
        for row in table.rows:
            assert 0 <= row["bus_utilization"] <= 1

    def test_controls(self, config):
        rnd = random_mapping(config)
        assert rnd.rows[-1]["fast_fraction"] < 0.5
        nop = no_prefetcher(config)
        assert {"rl", "rl_noprefetch"} <= set(nop.rows[-1])

    def test_sec71(self, config):
        table = section_7_1(config)
        assert 0 <= table.rows[-1]["fast_fraction"] <= 1

    def test_sec72(self, config):
        table = section_7_2(config)
        assert table.rows[-1]["savings_boost"] > 0
