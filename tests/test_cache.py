"""Set-associative cache behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.cache import Cache, CacheConfig, L1_CONFIG, L2_CONFIG


def small_cache(sets=4, ways=2):
    return Cache(CacheConfig(name="t", size_bytes=sets * ways * 64,
                             associativity=ways))


class TestConfig:
    def test_paper_geometries(self):
        assert L1_CONFIG.num_sets == 256       # 32 KB / (2 * 64B)
        assert L2_CONFIG.num_sets == 8192      # 4 MB / (8 * 64B)
        assert L2_CONFIG.latency == 10
        assert L1_CONFIG.latency == 1

    def test_rejects_unaligned_size(self):
        with pytest.raises(ValueError):
            CacheConfig(name="bad", size_bytes=1000, associativity=3)


class TestHitMiss:
    def test_miss_then_hit(self):
        c = small_cache()
        assert c.lookup(5) is None
        c.insert(5)
        assert c.lookup(5) is not None
        assert c.hits == 1
        assert c.misses == 1

    def test_peek_does_not_count(self):
        c = small_cache()
        c.insert(5)
        c.peek(5)
        c.peek(6)
        assert c.hits == 0 and c.misses == 0

    def test_hit_rate(self):
        c = small_cache()
        c.insert(1)
        c.lookup(1)
        c.lookup(2)
        assert c.hit_rate == pytest.approx(0.5)


class TestLRU:
    def test_eviction_order_is_lru(self):
        c = small_cache(sets=1, ways=2)
        c.insert(0)
        c.insert(1)
        victim = c.insert(2)
        assert victim.line_address == 0

    def test_lookup_refreshes_recency(self):
        c = small_cache(sets=1, ways=2)
        c.insert(0)
        c.insert(1)
        c.lookup(0)          # 0 becomes MRU
        victim = c.insert(2)
        assert victim.line_address == 1

    def test_reinsert_refreshes_and_merges_dirty(self):
        c = small_cache(sets=1, ways=2)
        c.insert(0, dirty=True)
        c.insert(1)
        assert c.insert(0) is None      # already present: no eviction
        assert c.peek(0).dirty          # dirty bit sticks
        victim = c.insert(2)
        assert victim.line_address == 1


class TestDirtyAndMetadata:
    def test_dirty_eviction_flagged(self):
        c = small_cache(sets=1, ways=1)
        c.insert(1, dirty=True, critical_word=3)
        victim = c.insert(2)
        assert victim.dirty
        assert victim.critical_word == 3
        assert c.dirty_evictions == 1

    def test_invalidate_returns_line(self):
        c = small_cache()
        c.insert(9, dirty=True)
        line = c.invalidate(9)
        assert line.dirty
        assert c.peek(9) is None
        assert c.invalidate(9) is None


class TestSetMapping:
    def test_different_sets_do_not_conflict(self):
        c = small_cache(sets=4, ways=1)
        for line in range(4):
            c.insert(line)
        assert all(c.peek(line) for line in range(4))

    def test_same_set_conflicts(self):
        c = small_cache(sets=4, ways=1)
        c.insert(0)
        victim = c.insert(4)  # 4 % 4 == 0: same set
        assert victim.line_address == 0

    def test_occupancy(self):
        c = small_cache(sets=4, ways=2)
        for line in range(6):
            c.insert(line)
        assert c.occupancy() == 6


class TestAgainstReferenceModel:
    @settings(max_examples=50)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=0, max_value=15)),
                    max_size=200))
    def test_matches_reference_lru(self, ops):
        """Compare against a brute-force LRU model."""
        sets, ways = 2, 2
        cache = small_cache(sets=sets, ways=ways)
        reference = [[] for _ in range(sets)]  # MRU at end
        for is_insert, line in ops:
            bucket = reference[line % sets]
            if is_insert:
                cache.insert(line)
                if line in bucket:
                    bucket.remove(line)
                elif len(bucket) == ways:
                    bucket.pop(0)
                bucket.append(line)
            else:
                hit = cache.lookup(line) is not None
                assert hit == (line in bucket)
                if hit:
                    bucket.remove(line)
                    bucket.append(line)
        for s in range(sets):
            for line in reference[s]:
                assert cache.peek(line) is not None
