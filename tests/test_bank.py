"""Bank state-machine legality and timing windows."""

import pytest

from repro.dram.bank import Bank, BankState
from repro.dram.timing import DDR3_TIMING, RLDRAM3_TIMING, TimingSet

DDR3 = TimingSet(DDR3_TIMING)
RLD = TimingSet(RLDRAM3_TIMING)


@pytest.fixture
def bank():
    return Bank(timing=DDR3, index=0)


@pytest.fixture
def rld_bank():
    return Bank(timing=RLD, index=0)


class TestActivate:
    def test_initially_idle_and_activatable(self, bank):
        assert bank.state is BankState.IDLE
        assert bank.can_activate(0)

    def test_activate_opens_row(self, bank):
        bank.activate(0, row=7)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 7
        assert bank.is_row_hit(7)
        assert not bank.is_row_hit(8)

    def test_cannot_activate_active_bank(self, bank):
        bank.activate(0, row=7)
        assert not bank.can_activate(DDR3.t_rc + 10)

    def test_act_to_act_respects_trc(self, bank):
        bank.activate(0, row=7)
        bank.precharge(DDR3.t_ras)  # earliest legal precharge
        # Even though precharged, ACT must wait for tRC from the first ACT
        # and tRP from the precharge.
        earliest = max(DDR3.t_rc, DDR3.t_ras + DDR3.t_rp)
        assert not bank.can_activate(earliest - 1)
        assert bank.can_activate(earliest)

    def test_illegal_activate_raises(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(RuntimeError):
            bank.activate(1, row=2)


class TestColumnCommands:
    def test_read_waits_for_trcd(self, bank):
        bank.activate(0, row=3)
        assert not bank.can_read(DDR3.t_rcd - 1, 3)
        assert bank.can_read(DDR3.t_rcd, 3)

    def test_read_returns_data_time(self, bank):
        bank.activate(0, row=3)
        data = bank.column_read(DDR3.t_rcd)
        assert data == DDR3.t_rcd + DDR3.t_rl

    def test_back_to_back_reads_respect_tccd(self, bank):
        bank.activate(0, row=3)
        t0 = DDR3.t_rcd
        bank.column_read(t0)
        assert not bank.can_read(t0 + DDR3.t_ccd - 1, 3)
        assert bank.can_read(t0 + DDR3.t_ccd, 3)

    def test_write_returns_wl_time(self, bank):
        bank.activate(0, row=3)
        data = bank.column_write(DDR3.t_rcd)
        assert data == DDR3.t_rcd + DDR3.t_wl

    def test_read_requires_open_row(self, bank):
        with pytest.raises(RuntimeError):
            bank.column_read(100)

    def test_read_wrong_row_is_not_hit(self, bank):
        bank.activate(0, row=3)
        assert not bank.can_read(DDR3.t_rcd, 4)


class TestPrecharge:
    def test_precharge_waits_for_tras(self, bank):
        bank.activate(0, row=3)
        assert not bank.can_precharge(DDR3.t_ras - 1)
        assert bank.can_precharge(DDR3.t_ras)

    def test_precharge_closes_row(self, bank):
        bank.activate(0, row=3)
        bank.precharge(DDR3.t_ras)
        assert bank.state is BankState.IDLE
        assert bank.open_row is None

    def test_write_recovery_delays_precharge(self, bank):
        bank.activate(0, row=3)
        t_write = DDR3.t_rcd
        bank.column_write(t_write)
        recovery = DDR3.t_wl + DDR3.t_burst + DDR3.t_wtr
        blocked_until = max(DDR3.t_ras, t_write + recovery)
        assert not bank.can_precharge(blocked_until - 1)
        assert bank.can_precharge(blocked_until)

    def test_illegal_precharge_raises(self, bank):
        with pytest.raises(RuntimeError):
            bank.precharge(0)


class TestRLDRAMAccess:
    def test_access_occupies_bank_for_trc(self, rld_bank):
        data = rld_bank.access(0, is_write=False)
        assert data == RLD.t_rl
        assert not rld_bank.can_access(RLD.t_rc - 1)
        assert rld_bank.can_access(RLD.t_rc)

    def test_write_access_uses_wl(self, rld_bank):
        assert rld_bank.access(0, is_write=True) == RLD.t_wl

    def test_illegal_access_raises(self, rld_bank):
        rld_bank.access(0, is_write=False)
        with pytest.raises(RuntimeError):
            rld_bank.access(1, is_write=False)

    def test_counts(self, rld_bank):
        rld_bank.access(0, is_write=False)
        rld_bank.access(RLD.t_rc, is_write=True)
        assert rld_bank.read_count == 1
        assert rld_bank.write_count == 1
        assert rld_bank.activate_count == 2


class TestRefresh:
    def test_refresh_blocks_bank(self, bank):
        bank.refresh_block(0, until=500)
        assert not bank.can_activate(499)
        assert bank.can_activate(500)

    def test_refresh_force_closes_row(self, bank):
        bank.activate(0, row=3)
        bank.refresh_block(200, until=700)
        assert bank.state is BankState.IDLE

    def test_last_use_tracks_commands(self, bank):
        bank.activate(0, row=1)
        bank.column_read(DDR3.t_rcd)
        assert bank.last_use == DDR3.t_rcd
