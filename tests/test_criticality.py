"""Criticality profiler (Figures 3/4 machinery)."""

import pytest

from repro.core.criticality import CriticalityProfiler


class TestDistribution:
    def test_empty(self):
        p = CriticalityProfiler()
        assert p.distribution() == [0.0] * 8
        assert p.word0_fraction == 0.0

    def test_simple_counts(self):
        p = CriticalityProfiler()
        for _ in range(3):
            p.observe(0, line_address=1, critical_word=0)
        p.observe(0, line_address=2, critical_word=5)
        dist = p.distribution()
        assert dist[0] == pytest.approx(0.75)
        assert dist[5] == pytest.approx(0.25)
        assert p.word0_fraction == pytest.approx(0.75)


class TestRepeatPrediction:
    def test_stable_word_repeats(self):
        p = CriticalityProfiler()
        for _ in range(5):
            p.observe(0, line_address=9, critical_word=3)
        assert p.repeat_fraction == 1.0

    def test_alternating_words_never_repeat(self):
        p = CriticalityProfiler()
        for i in range(6):
            p.observe(0, line_address=9, critical_word=i % 2)
        assert p.repeat_fraction == 0.0

    def test_falls_back_to_word0_without_refetches(self):
        p = CriticalityProfiler()
        p.observe(0, 1, 0)
        p.observe(0, 2, 0)
        p.observe(0, 3, 4)
        assert p.repeat_fraction == p.word0_fraction


class TestTopLines:
    def test_ranked_by_fetch_count(self):
        p = CriticalityProfiler()
        for _ in range(10):
            p.observe(0, line_address=100, critical_word=2)
        for _ in range(3):
            p.observe(0, line_address=200, critical_word=0)
        top = p.top_lines(2)
        assert top[0].line_address == 100
        assert top[0].total == 10
        assert top[0].dominant_word() == 2
        assert top[1].line_address == 200

    def test_fractions_sum_to_one(self):
        p = CriticalityProfiler()
        p.observe(0, 7, 1)
        p.observe(0, 7, 1)
        p.observe(0, 7, 4)
        hist = p.top_lines(1)[0]
        assert sum(hist.fractions()) == pytest.approx(1.0)

    def test_dominance_metric(self):
        p = CriticalityProfiler()
        # Line 1: 3-of-4 to word 2; line 2: only one fetch (excluded).
        for w in (2, 2, 2, 6):
            p.observe(0, 1, w)
        p.observe(0, 2, 0)
        assert p.per_line_dominance() == pytest.approx(0.75)
