"""Address mapping: decode/encode round trips and interleaving shape."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dram.address import AddressMapper, MappingScheme
from repro.dram.device import DDR3_DEVICE, RLDRAM3_DEVICE
from repro.dram.request import LINE_BYTES


def open_mapper(channels=4):
    return AddressMapper(device=DDR3_DEVICE, num_channels=channels,
                         ranks_per_channel=1, devices_per_rank=8,
                         scheme=MappingScheme.OPEN_PAGE)


def close_mapper(channels=4):
    return AddressMapper(device=RLDRAM3_DEVICE, num_channels=channels,
                         ranks_per_channel=1, devices_per_rank=8,
                         scheme=MappingScheme.CLOSE_PAGE)


class TestOpenPage:
    def test_consecutive_lines_share_row(self):
        m = open_mapper()
        a = m.decode(0)
        b = m.decode(LINE_BYTES)
        assert (a.channel, a.rank, a.bank, a.row) == \
               (b.channel, b.rank, b.bank, b.row)
        assert b.column == a.column + 1

    def test_row_crossing_changes_channel(self):
        m = open_mapper()
        a = m.decode(0)
        b = m.decode(m.lines_per_row * LINE_BYTES)
        assert b.channel == (a.channel + 1) % 4

    def test_lines_per_row(self):
        m = open_mapper()
        # 8 chips x 1 KB row = 8 KB row = 128 lines.
        assert m.row_bytes == 8192
        assert m.lines_per_row == 128

    def test_fields_in_range(self):
        m = open_mapper()
        for line in range(0, 100_000, 97):
            d = m.decode(line * LINE_BYTES)
            assert 0 <= d.channel < 4
            assert 0 <= d.bank < DDR3_DEVICE.num_banks
            assert 0 <= d.row < DDR3_DEVICE.num_rows
            assert 0 <= d.column < m.lines_per_row


class TestClosePage:
    def test_consecutive_lines_round_robin_channels(self):
        m = close_mapper()
        channels = [m.decode(i * LINE_BYTES).channel for i in range(8)]
        assert channels == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_banks_interleave_after_channels(self):
        m = close_mapper()
        a = m.decode(0)
        b = m.decode(4 * LINE_BYTES)  # same channel, next bank
        assert b.channel == a.channel
        assert b.bank == a.bank + 1


class TestRoundTrip:
    @settings(max_examples=200)
    @given(st.integers(min_value=0, max_value=(1 << 33) - 1),
           st.sampled_from([MappingScheme.OPEN_PAGE,
                            MappingScheme.CLOSE_PAGE]))
    def test_encode_decode_roundtrip(self, line, scheme):
        m = AddressMapper(device=DDR3_DEVICE, num_channels=4,
                          ranks_per_channel=2, devices_per_rank=8,
                          scheme=scheme)
        address = line * LINE_BYTES
        if address >= m.capacity_bytes:
            address %= m.capacity_bytes
        decoded = m.decode(address)
        assert m.encode(decoded) == address - (address % LINE_BYTES)

    def test_distinct_lines_distinct_locations(self):
        m = open_mapper()
        seen = set()
        for line in range(4096):
            d = m.decode(line * LINE_BYTES)
            key = (d.channel, d.rank, d.bank, d.row, d.column)
            assert key not in seen
            seen.add(key)


class TestValidation:
    def test_non_power_of_two_channels_allowed(self):
        # Needed for the 3-channel LPDDR2 side of the Sec 7.1 system.
        m = AddressMapper(device=DDR3_DEVICE, num_channels=3,
                          ranks_per_channel=1, devices_per_rank=8,
                          scheme=MappingScheme.OPEN_PAGE)
        channels = {m.decode(i * m.lines_per_row * LINE_BYTES).channel
                    for i in range(9)}
        assert channels == {0, 1, 2}

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            AddressMapper(device=DDR3_DEVICE, num_channels=0,
                          ranks_per_channel=1, devices_per_rank=8,
                          scheme=MappingScheme.OPEN_PAGE)

    def test_capacity(self):
        m = open_mapper()
        # 4 channels x 1 rank x 8 chips x 256 MB = 8 GB.
        assert m.capacity_bytes == 8 * (1 << 30)
