"""SimConfig memory factory and the adaptive tag seeder."""

from repro.core.cwf import CriticalWordMemory, CWFPolicy, HeteroPair
from repro.core.placement import PagePlacementMemory
from repro.memsys.homogeneous import HomogeneousMemory
from repro.sim.config import (
    MemoryKind,
    SimConfig,
    adaptive_tag_seeder,
    build_memory,
)
from repro.util.events import EventQueue
from repro.workloads.profiles import profile_for
from repro.workloads.synthetic import preferred_word_for_global_line


class TestBuildMemory:
    def build(self, kind, profile=None):
        config = SimConfig(memory=kind, num_cores=2, target_dram_reads=100)
        return build_memory(config, EventQueue(), profile=profile)

    def test_homogeneous_kinds(self):
        for kind in (MemoryKind.DDR3, MemoryKind.RLDRAM3, MemoryKind.LPDDR2):
            memory = self.build(kind)
            assert isinstance(memory, HomogeneousMemory)
            assert memory.config.kind.value == kind.value

    def test_cwf_kinds(self):
        pairs = {MemoryKind.RD: HeteroPair.RD, MemoryKind.RL: HeteroPair.RL,
                 MemoryKind.DL: HeteroPair.DL}
        for kind, pair in pairs.items():
            memory = self.build(kind)
            assert isinstance(memory, CriticalWordMemory)
            assert memory.config.pair is pair
            assert memory.config.policy is CWFPolicy.STATIC

    def test_policy_variants(self):
        assert self.build(MemoryKind.RL_ADAPTIVE).config.policy \
            is CWFPolicy.ADAPTIVE
        assert self.build(MemoryKind.RL_ORACLE).config.policy \
            is CWFPolicy.ORACLE
        assert self.build(MemoryKind.RL_RANDOM).config.policy \
            is CWFPolicy.RANDOM

    def test_adaptive_gets_seeder_with_profile(self):
        memory = self.build(MemoryKind.RL_ADAPTIVE,
                            profile=profile_for("mcf"))
        assert memory._tag_seeder is not None

    def test_page_placement_profiles_offline(self):
        memory = self.build(MemoryKind.PAGE_PLACEMENT,
                            profile=profile_for("mcf"))
        assert isinstance(memory, PagePlacementMemory)
        assert memory._hot_slots  # profiling produced hot pages


class TestAdaptiveSeeder:
    def test_deterministic(self):
        profile = profile_for("mcf")
        s1 = adaptive_tag_seeder(profile)
        s2 = adaptive_tag_seeder(profile)
        assert [s1(line) for line in range(500)] == \
               [s2(line) for line in range(500)]

    def test_seed_probability_zero_means_all_word0(self):
        seeder = adaptive_tag_seeder(profile_for("mcf"), seed_probability=0)
        assert all(seeder(line) == 0 for line in range(200))

    def test_stream_profile_seeds_mostly_word0(self):
        seeder = adaptive_tag_seeder(profile_for("leslie3d"),
                                     seed_probability=1.0)
        words = [seeder(line) for line in range(2000)]
        assert words.count(0) / len(words) > 0.85

    def test_chase_profile_seeds_preferred_words(self):
        profile = profile_for("mcf")
        seeder = adaptive_tag_seeder(profile, seed_probability=1.0)
        matches = sum(
            seeder(line) in (0, preferred_word_for_global_line(profile, line))
            for line in range(2000))
        assert matches == 2000
