"""Artifact store: atomic writes, CAS semantics, budgets, eviction.

The tentpole guarantees under test:

* one atomic+durable write path shared by cache entries, checkpoints,
  and job manifests — a crash (or a fault injected mid-write) leaves
  either the old complete file or the new complete file, never a torn
  one;
* content addressing — payload digests are re-verified on read, bit
  rot quarantines instead of returning garbage;
* size bounding — a tier filled past its byte budget LRU-evicts
  unpinned entries (journal order, not mtime), pinned entries survive,
  and an evicted cache entry is recomputed *byte-identically* on the
  next request, never surfaced as an error;
* concurrency — multi-process writers under the per-key flock never
  produce a torn or lost entry.

Satellite regressions ride along: Retry-After HTTP-date parsing and
the total-wait cap, monotonic telemetry durations, histogram
percentile edge cases, and the JobStore fsync/torn-write fix.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, ResultCache, RunSpec, run_specs
from repro.experiments.runner import default_config
from repro.experiments.specs import spec_cache_key
from repro.service.client import parse_retry_after
from repro.service.jobs import Job
from repro.service.store import JobStore
from repro.sim.checkpoint import (
    Checkpointer,
    checkpoint_path,
    checkpoint_pin_path,
    delete_checkpoint,
)
from repro.sim.system import SimResult
from repro.store import (
    ArtifactStore,
    FileStore,
    atomic_write_bytes,
    format_size,
    key_digest,
    parse_size,
    quarantine_file,
)
from repro.store.cli import cmd_store
from repro.telemetry.registry import Histogram

READS = 60


def make_result(benchmark="mcf", cycles=10) -> SimResult:
    return SimResult(
        benchmark=benchmark, memory="ddr3", num_cores=8,
        elapsed_cycles=cycles, instructions=100, per_core_ipc=[1.0],
        dram_reads=5, dram_writes=1, demand_reads=5, avg_queue_latency=1.0,
        avg_core_latency=2.0, avg_critical_latency=3.0, avg_fill_latency=4.0,
        fast_service_fraction=0.5, bus_utilization=0.1,
        memory_power_mw=100.0, memory_power_by_family={"ddr3": 100.0},
        l2_hit_rate=0.9)


def config_for(tmp_path, **kwargs) -> ExperimentConfig:
    return ExperimentConfig(target_dram_reads=READS, benchmarks=("mcf",),
                            cache_dir=str(tmp_path), **kwargs)


# ---------------------------------------------------------------------------
# Atomic write path
# ---------------------------------------------------------------------------


class TestAtomicWrite:
    def test_roundtrip_and_no_temp_residue(self, tmp_path):
        path = tmp_path / "a" / "b.json"
        atomic_write_bytes(path, b"payload")
        assert path.read_bytes() == b"payload"
        assert [p.name for p in path.parent.iterdir()] == ["b.json"]

    def test_torn_write_leaves_original_intact(self, tmp_path, monkeypatch):
        """A crash before os.replace must preserve the previous file."""
        path = tmp_path / "entry.json"
        atomic_write_bytes(path, b"old complete contents")

        def exploding_fsync(fd):
            raise OSError("injected crash mid-write")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError, match="injected crash"):
            atomic_write_bytes(path, b"new partial contents")
        monkeypatch.undo()
        assert path.read_bytes() == b"old complete contents"
        assert not list(tmp_path.glob("*.tmp.*"))  # temp cleaned up

    def test_non_durable_skips_fsync(self, tmp_path, monkeypatch):
        calls = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: calls.append(fd) or real_fsync(fd))
        atomic_write_bytes(tmp_path / "x", b"data", durable=False)
        assert calls == []
        atomic_write_bytes(tmp_path / "y", b"data", durable=True)
        assert len(calls) >= 2  # file fsync + parent-dir fsync

    def test_quarantine_preserves_evidence(self, tmp_path):
        path = tmp_path / "e.json"
        path.write_text("garbage")
        target = quarantine_file(path)
        assert target == tmp_path / "e.json.corrupt"
        assert target.read_text() == "garbage"
        assert not path.exists()


class TestParseSize:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096), ("64M", 64 << 20), ("64m", 64 << 20),
        ("1.5GiB", int(1.5 * (1 << 30))), ("2kb", 2048),
        (" 8 MiB ", 8 << 20), (1024, 1024), (None, None), ("", None),
    ])
    def test_accepts(self, text, expected):
        assert parse_size(text) == expected

    @pytest.mark.parametrize("junk", ["lots", "64Q", "M64", "-1"])
    def test_rejects(self, junk):
        with pytest.raises(ValueError, match="cannot parse size"):
            parse_size(junk)

    def test_format_roundtrips_readably(self):
        assert format_size(None) == "unbounded"
        assert format_size(64 << 20) == "64.0MiB"
        assert format_size(100) == "100B"


# ---------------------------------------------------------------------------
# ArtifactStore (the CAS tier)
# ---------------------------------------------------------------------------


class TestArtifactStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes("key", b"value")
        assert store.get_bytes("key") == b"value"
        assert store.blob_path(digest).exists()
        assert (store.counters["hits"], store.counters["writes"]) == (1, 1)

    def test_identical_payloads_share_one_blob(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.put_bytes("key-a", b"shared payload")
        b = store.put_bytes("key-b", b"shared payload")
        assert a == b
        assert len(list(store.blobs_dir.glob("*/*.blob"))) == 1
        assert store.counters["dedup_hits"] == 1

    def test_bit_rot_is_quarantined_not_returned(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes("key", b"original")
        blob = store.blob_path(digest)
        blob.write_bytes(b"rotted!!")
        assert store.get_bytes("key") is None
        assert store.counters["quarantined"] == 1
        assert blob.with_name(blob.name + ".corrupt").exists()
        # The entry now reads as a plain miss -> caller recomputes.
        assert store.get_bytes("key") is None

    def test_missing_blob_heals_to_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes("key", b"data")
        store.blob_path(digest).unlink()
        assert store.get_bytes("key") is None
        assert not store.contains("key")  # stale index dropped

    def test_legacy_digest_compatible(self, tmp_path):
        # index file names reuse the pre-store 24-hex-char key digest.
        store = ArtifactStore(tmp_path)
        store.put_bytes("key", b"x")
        import hashlib
        legacy = hashlib.sha256(b"key").hexdigest()[:24]
        assert store.index_path("key").name == f"{legacy}.json"
        assert key_digest("key") == legacy


class TestEviction:
    """Fill a 1 MiB-budget store past capacity; check LRU discipline."""

    BUDGET = 1 << 20

    def _fill(self, store, n=24, size=64 << 10):
        for i in range(n):
            store.put_bytes(f"key-{i:02d}", os.urandom(size))

    def test_fill_past_capacity_stays_bounded(self, tmp_path):
        store = ArtifactStore(tmp_path, budget_bytes=self.BUDGET)
        self._fill(store)  # 24 * 64 KiB = 1.5 MiB of payload
        assert store.total_bytes() <= self.BUDGET
        assert store.counters["evictions"] > 0
        # Evicted keys read as clean misses, never errors.
        for i in range(24):
            data = store.get_bytes(f"key-{i:02d}")
            assert data is None or len(data) == 64 << 10

    def test_lru_order_least_recent_goes_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for i in range(4):
            store.put_bytes(f"key-{i}", bytes([i]) * 1000)
        # Touch key-0 so key-1 becomes the least recently used.
        assert store.get_bytes("key-0") is not None
        report = store.gc(max_bytes=3500)
        assert "key-1" in report["evicted"]
        assert store.get_bytes("key-0") is not None

    def test_pinned_entries_survive_zero_budget(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_bytes("pinned", b"precious", pin=True)
        store.put_bytes("victim", b"expendable")
        report = store.gc(max_bytes=0)
        assert report["pinned_kept"] == 1
        assert store.get_bytes("pinned") == b"precious"
        assert store.get_bytes("victim") is None
        store.unpin("pinned")
        store.gc(max_bytes=0)
        assert store.get_bytes("pinned") is None

    def test_dead_process_pin_expires(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_bytes("stale", b"abandoned")
        pin = store.index_path("stale").with_name(
            store.index_path("stale").name + ".pin")
        pin.write_text("999999999")  # pid that cannot exist
        store.gc(max_bytes=0)
        assert store.get_bytes("stale") is None

    def test_gc_sweeps_orphan_blobs_and_compacts_journal(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_bytes("a", b"aaa")
        store.put_bytes("a", b"bbb")  # first blob orphaned by overwrite
        for _ in range(5):
            store.get_bytes("a")
        report = store.gc()
        assert report["orphan_blobs_removed"] == 1
        journal = store.journal_path.read_text().splitlines()
        assert len(journal) == 1  # one line per surviving entry

    def test_dry_run_touches_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_bytes("key", b"data")
        report = store.gc(max_bytes=0, dry_run=True)
        assert report["evicted"] == ["key"]
        assert store.get_bytes("key") == b"data"


class TestVerify:
    def test_clean_store_has_no_problems(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put_bytes("key", b"data")
        assert store.verify() == []

    def test_detects_and_repairs_rot(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes("key", b"data")
        store.blob_path(digest).write_bytes(b"rot.")
        problems = store.verify()
        assert len(problems) == 1 and "mismatch" in problems[0]
        store.verify(repair=True)
        assert store.verify() == []
        assert not store.contains("key")  # next run recomputes


# ---------------------------------------------------------------------------
# Multi-process writers under the per-key flock
# ---------------------------------------------------------------------------


def _hammer_store(directory, worker, n):
    store = ArtifactStore(directory)
    for i in range(n):
        payload = f"worker={worker} iter={i}".encode().ljust(256, b".")
        store.put_bytes("contended", payload)
        data = store.get_bytes("contended")
        # Either our write or a peer's — always a complete 256-byte
        # record, never interleaved halves.
        assert data is None or (len(data) == 256 and data.startswith(b"worker="))


class TestConcurrentWriters:
    def test_parallel_puts_never_tear(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [ctx.Process(target=_hammer_store,
                             args=(str(tmp_path), w, 25))
                 for w in range(3)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ArtifactStore(tmp_path)
        assert store.get_bytes("contended").startswith(b"worker=")


# ---------------------------------------------------------------------------
# ResultCache on the store: migration, budget, recompute determinism
# ---------------------------------------------------------------------------


class TestResultCacheMigration:
    def test_legacy_flat_entry_resolves_and_migrates(self, tmp_path):
        result = make_result(cycles=77)
        data = dataclasses.asdict(result)
        data["__key__"] = "old-key"
        legacy = tmp_path / f"{key_digest('old-key')}.json"
        legacy.write_text(json.dumps(data))

        cache = ResultCache(str(tmp_path))
        recalled = cache.get("old-key")
        assert recalled is not None and recalled.elapsed_cycles == 77
        assert cache.stats()["hits"] == 1  # a hit, not a recompute
        assert not legacy.exists()  # retired into the store
        assert cache.store.contains("old-key")
        # Second read comes straight from the CAS.
        assert cache.get("old-key").elapsed_cycles == 77

    def test_corrupt_legacy_entry_is_quarantined(self, tmp_path):
        legacy = tmp_path / f"{key_digest('key')}.json"
        legacy.write_text("{torn")
        cache = ResultCache(str(tmp_path))
        assert cache.get("key") is None
        assert cache.stats()["quarantined"] == 1
        assert legacy.with_name(legacy.name + ".corrupt").exists()

    def test_contains_sees_legacy_entries(self, tmp_path):
        legacy = tmp_path / f"{key_digest('key')}.json"
        legacy.write_text("{}")
        cache = ResultCache(str(tmp_path))
        assert cache.contains("key")


class TestBudgetedRecompute:
    def test_eviction_forces_byte_identical_recompute(self, tmp_path):
        """The acceptance bar: evict everything, rerun, same bytes."""
        config = config_for(tmp_path)
        spec = RunSpec("mcf", "ddr3")
        first = run_specs([spec], config, jobs=1)[spec]

        cache = ResultCache(str(tmp_path))
        cache.gc(max_bytes=0)
        assert not cache.contains(spec_cache_key(spec, config))

        second = run_specs([spec], config, jobs=1)[spec]
        assert (json.dumps(dataclasses.asdict(first), sort_keys=True)
                == json.dumps(dataclasses.asdict(second), sort_keys=True))

    def test_env_budget_flows_into_default_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "64M")
        assert default_config().cache_budget_bytes == 64 << 20
        monkeypatch.setenv("REPRO_CACHE_BUDGET", "garbage")
        with pytest.raises(ValueError, match="REPRO_CACHE_BUDGET"):
            default_config()

    def test_budgeted_cache_bounds_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path), budget_bytes=2048)
        for i in range(40):
            cache.put(f"key-{i}", make_result(cycles=i))
        assert cache.store.total_bytes() <= 4096  # bounded overshoot
        assert cache.store.counters["evictions"] > 0


# ---------------------------------------------------------------------------
# JobStore durability (satellite: the missing-fsync bug)
# ---------------------------------------------------------------------------


class TestJobStoreDurability:
    def _job(self) -> Job:
        return Job.from_dict({"id": "j-test01", "state": "queued"})

    def test_save_fsyncs_data_and_directory(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: synced.append(fd) or real_fsync(fd))
        JobStore(str(tmp_path)).save(self._job())
        assert len(synced) >= 2  # manifest bytes + directory entry

    def test_torn_save_preserves_previous_manifest(self, tmp_path,
                                                   monkeypatch):
        store = JobStore(str(tmp_path))
        job = self._job()
        store.save(job)
        before = store._path(job.id).read_text()

        monkeypatch.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(
            OSError("injected crash")))
        job.state = "running"
        with pytest.raises(OSError):
            store.save(job)
        monkeypatch.undo()
        assert store._path(job.id).read_text() == before
        reloaded = store.load(job.id)
        assert reloaded is not None and reloaded.state == "queued"

    def test_manifest_gc_spares_non_terminal_jobs(self, tmp_path):
        store = JobStore(str(tmp_path), budget_bytes=0)
        queued = self._job()
        store.save(queued)
        done = Job.from_dict({"id": "j-test02", "state": "done"})
        store.save(done)
        report = store.gc()
        assert "j-test02.json" in report["evicted"]
        assert report["pinned_kept"] == 1
        assert store.load("j-test01") is not None
        assert store.load("j-test02") is None


# ---------------------------------------------------------------------------
# Checkpoint pins
# ---------------------------------------------------------------------------


class TestCheckpointPins:
    class _FakeUncore:
        dram_reads = 500

    class _FakeSystem:
        uncore = None

        def __init__(self):
            self.uncore = TestCheckpointPins._FakeUncore()

    def test_save_pins_and_delete_unpins(self, tmp_path):
        path = checkpoint_path(tmp_path, "cache-key")
        ckpt = Checkpointer(path, "cache-key", every_reads=100)
        assert ckpt.save(self._FakeSystem(), executed=1)
        pin = checkpoint_pin_path(path)
        assert pin.exists() and pin.read_text() == str(os.getpid())
        # A live pin shields the checkpoint from gc.
        store = FileStore(tmp_path, "ck-*.ckpt", tier="checkpoints")
        report = store.gc(max_bytes=0)
        assert report["pinned_kept"] == 1 and path.exists()
        delete_checkpoint(path)
        assert list(tmp_path.iterdir()) == []  # nothing left behind

    def test_unpicklable_system_writes_nothing(self, tmp_path):
        path = checkpoint_path(tmp_path, "k")
        ckpt = Checkpointer(path, "k")
        system = self._FakeSystem()
        system.poison = lambda: None  # lambdas cannot pickle
        assert not ckpt.save(system, executed=0)
        assert ckpt.disabled and list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# repro store CLI
# ---------------------------------------------------------------------------


class TestStoreCli:
    def test_stats_gc_verify_roundtrip(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "cache")
        for i in range(6):
            store.put_bytes(f"key-{i}", os.urandom(2000))
        assert cmd_store(["stats", "--cache", str(tmp_path / "cache")]) == 0
        assert "results" in capsys.readouterr().out

        assert cmd_store(["gc", "--cache", str(tmp_path / "cache"),
                          "--max-bytes", "8K", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)[0]
        assert report["bytes_after"] <= 8192
        assert ArtifactStore(tmp_path / "cache").total_bytes() <= 8192

        assert cmd_store(["verify", "--cache",
                          str(tmp_path / "cache")]) == 0

    def test_verify_exits_nonzero_on_rot(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "cache")
        digest = store.put_bytes("key", b"data")
        store.blob_path(digest).write_bytes(b"rot!")
        assert cmd_store(["verify", "--cache",
                          str(tmp_path / "cache")]) == 1
        assert "mismatch" in capsys.readouterr().out

    def test_unknown_subcommand_usage(self, capsys):
        assert cmd_store(["frobnicate"]) == 2


# ---------------------------------------------------------------------------
# Satellite: Retry-After parsing + capped total wait
# ---------------------------------------------------------------------------


class TestRetryAfter:
    def test_delta_seconds(self):
        assert parse_retry_after("3", 1.0) == 3.0
        assert parse_retry_after("0", 1.0) == 0.0
        assert parse_retry_after("-5", 1.0) == 0.0  # never negative

    def test_http_date_future(self):
        from email.utils import format_datetime
        from datetime import datetime, timedelta, timezone
        when = datetime.now(timezone.utc) + timedelta(seconds=30)
        wait = parse_retry_after(format_datetime(when, usegmt=True), 1.0)
        assert 25.0 < wait <= 30.5

    def test_http_date_past_means_now(self):
        assert parse_retry_after("Wed, 21 Oct 2015 07:28:00 GMT", 1.0) == 0.0

    def test_unparsable_falls_back(self):
        assert parse_retry_after("soon-ish", 2.5) == 2.5
        assert parse_retry_after(None, 2.5) == 2.5

    def test_submit_caps_total_wait(self, monkeypatch):
        from repro.service.client import ServiceClient, ServiceError
        client = ServiceClient("http://127.0.0.1:1")
        monkeypatch.setattr(
            client, "_request",
            lambda *a, **k: (429, {"error": "busy"},
                            {"Retry-After": "3600"}))
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        with pytest.raises(ServiceError):
            client.submit({}, retries=50, backoff_s=1.0, max_wait_s=10.0)
        assert sum(slept) <= 10.0  # the hour-long header never applies


# ---------------------------------------------------------------------------
# Satellite: histogram percentile edges
# ---------------------------------------------------------------------------


class TestPercentileEdges:
    def test_empty_histogram_is_zero_everywhere(self):
        h = Histogram("empty")
        assert h.percentile(0) == h.percentile(50) == h.percentile(100) == 0.0

    def test_p0_is_exact_min_and_p100_exact_max(self):
        h = Histogram("h")
        for v in (3, 17, 900):
            h.observe(v)
        assert h.percentile(0) == 3.0
        assert h.percentile(100) == 900.0
        assert h.percentile(-5) == 3.0  # out-of-range clamps, not crashes
        assert h.percentile(250) == 900.0

    def test_zero_minimum_clamps_interpolation(self):
        # min=0 is falsy; the old `self.min or lo` discarded it.
        h = Histogram("h")
        h.observe(0)
        h.observe(0)
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 0.0

    def test_single_sample_every_percentile_agrees(self):
        h = Histogram("h")
        h.observe(42)
        for p in (0, 1, 50, 99, 100):
            assert h.percentile(p) == 42.0


# ---------------------------------------------------------------------------
# Satellite: monotonic durations
# ---------------------------------------------------------------------------


class TestMonotonicDurations:
    def test_wall_clock_step_cannot_negate_durations(self, monkeypatch):
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession(trace_enabled=False)
        run = session.begin_run("mcf", "ddr3")
        # Simulate an NTP step: wall clock jumps 1 hour into the past.
        monkeypatch.setattr(time, "time", lambda: 0.0)
        record = session.end_run(run)
        assert record["wall_time_s"] >= 0.0
        assert session.manifest()["wall_time_s"] >= 0.0
