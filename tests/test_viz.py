"""Terminal visualisation helpers."""

from repro.experiments.runner import ExperimentTable
from repro.viz import bar_chart, render_bars, scatter, table_scatter


def sample_table():
    table = ExperimentTable("figX", "demo", ["benchmark", "rl"])
    table.add(benchmark="a", rl=1.2)
    table.add(benchmark="bb", rl=0.8)
    table.add(benchmark="MEAN", rl=1.0)
    return table


class TestRenderBars:
    def test_empty(self):
        assert render_bars([]) == "(no data)"

    def test_bars_scale_with_values(self):
        text = render_bars([("x", 1.0), ("y", 0.5)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_reference_marker_drawn(self):
        text = render_bars([("x", 0.5)], width=20, reference=1.0)
        assert "|" in text

    def test_zero_values_ok(self):
        text = render_bars([("x", 0.0)])
        assert "x" in text

    def test_labels_aligned(self):
        text = render_bars([("short", 1.0), ("longer-name", 1.0)])
        lines = text.splitlines()
        assert lines[0].index("1.000") == lines[1].index("1.000")


class TestBarChart:
    def test_skips_mean_row(self):
        text = bar_chart(sample_table(), value="rl")
        assert "MEAN" not in text
        assert "bb" in text

    def test_header_present(self):
        text = bar_chart(sample_table(), value="rl")
        assert "figX" in text


class TestScatter:
    def test_empty(self):
        assert scatter([]) == "(no data)"

    def test_extremes_plotted(self):
        text = scatter([(0.0, 0.0), (1.0, 1.0)], width=10, height=5)
        lines = text.splitlines()
        # Top row holds the max-y point, bottom grid row the min-y one.
        assert "*" in lines[1]
        assert "*" in lines[5]

    def test_labels_used_as_marks(self):
        text = scatter([(0, 0), (1, 1)], labels=["alpha", "beta"],
                       width=10, height=4)
        assert "a" in text and "b" in text

    def test_table_scatter(self):
        table = ExperimentTable("fig11", "scatter demo",
                                ["benchmark", "u", "s"])
        table.add(benchmark="a", u=0.1, s=0.05)
        table.add(benchmark="b", u=0.4, s=0.2)
        text = table_scatter(table, x="u", y="s")
        assert "fig11" in text
        assert "u [" in text
