"""Parameter-sweep utility."""

import pytest

from repro.sim.config import MemoryKind, SimConfig
from repro.sweep import apply_parameter, run_point, sweep


class TestApplyParameter:
    def test_mshr(self):
        config = apply_parameter(SimConfig(), "mshr_capacity", 16)
        assert config.uncore.mshr_capacity == 16

    def test_prefetch_degree(self):
        config = apply_parameter(SimConfig(), "prefetch_degree", 8)
        assert config.uncore.prefetcher.degree == 8

    def test_rob(self):
        config = apply_parameter(SimConfig(), "rob_size", 128)
        assert config.core.rob_size == 128

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            apply_parameter(SimConfig(), "nonsense", 1)

    def test_base_config_not_mutated(self):
        base = SimConfig()
        apply_parameter(base, "mshr_capacity", 8)
        assert base.uncore.mshr_capacity != 8 or \
            base.uncore.mshr_capacity == 8  # frozen: no mutation possible
        assert base.uncore.mshr_capacity == SimConfig().uncore.mshr_capacity


class TestSweep:
    def test_mshr_sweep_shape(self):
        table = sweep("mcf", "mshr_capacity", [8, 256],
                      target_dram_reads=250)
        assert len(table.rows) == 2
        assert table.rows[0]["mshr_capacity"] == 8
        assert all(r["throughput"] > 0 for r in table.rows)

    def test_tiny_mshr_hurts(self):
        table = sweep("leslie3d", "mshr_capacity", [2, 256],
                      target_dram_reads=250)
        small, big = table.rows
        assert big["throughput"] >= small["throughput"]

    def test_tiny_rob_hurts(self):
        table = sweep("leslie3d", "rob_size", [8, 64],
                      target_dram_reads=250)
        small, big = table.rows
        assert big["throughput"] >= small["throughput"]

    def test_read_queue_sweep_runs(self):
        table = sweep("mcf", "read_queue_size", [8, 48],
                      target_dram_reads=250)
        assert len(table.rows) == 2

    def test_controller_sweep_rejects_non_baseline(self):
        with pytest.raises(ValueError):
            run_point("mcf",
                      SimConfig(memory=MemoryKind.RL, target_dram_reads=100),
                      "read_queue_size", 8)
