"""Golden equivalence for the hot-path kernel overhaul (PR 7).

The overhaul (slotted event core, flattened DRAM timing tables, hoisted
controller issue loops, inlined prewarm insert) is required to be
*bit-identical*: every :class:`~repro.sim.system.SimResult` field for a
3-memory x 2-benchmark matrix must match values captured on the
pre-refactor kernel, stored in ``tests/data/golden_kernel.json``.

Also here:

* cache-key stability — the disk-cache key format must survive
  refactors unchanged so warm caches keep hitting (``v8`` since the
  workload-registry refactor added the workload content token);
* a hypothesis property test that the tuple-heap event queue fires in
  exactly ``(time, seq)`` order with cancellation respected — the
  invariant the golden matrix relies on, checked in isolation over
  arbitrary schedules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.specs import (
    CACHE_KEY_VERSION,
    RunSpec,
    spec_cache_key,
)
from repro.sim.config import SimConfig
from repro.sim.system import run_benchmark
from repro.util.events import EventQueue

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_kernel.json"

with GOLDEN_PATH.open() as _handle:
    GOLDEN = json.load(_handle)

CELLS = sorted(GOLDEN["results"])


# ---------------------------------------------------------------------------
# Golden matrix: bit-identical SimResult across the refactor
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cell", CELLS)
def test_simresult_matches_golden(cell):
    benchmark, memory = cell.split("/")
    config = SimConfig(memory=memory,
                       target_dram_reads=GOLDEN["target_dram_reads"])
    result = run_benchmark(benchmark, config)
    mismatches = {
        field: (getattr(result, field), expected)
        for field, expected in GOLDEN["results"][cell].items()
        if getattr(result, field) != expected
    }
    assert not mismatches, (
        f"{cell}: kernel output diverged from the pre-refactor golden "
        f"(field: (got, expected)): {mismatches}")


def test_golden_covers_all_controller_paths():
    """The matrix must keep exercising open-page, close-page/hetero, and
    shared-command-bus controllers — do not shrink it."""
    memories = {cell.split("/")[1] for cell in CELLS}
    assert memories == {"ddr3", "rl", "hmc_cwf"}
    benchmarks = {cell.split("/")[0] for cell in CELLS}
    assert benchmarks == {"mcf", "leslie3d"}


# ---------------------------------------------------------------------------
# Cache-key stability: warm v8 caches must keep hitting
# ---------------------------------------------------------------------------


class _KeyConfig:
    """Duck-typed ExperimentConfig: just what spec_cache_key consumes."""

    target_dram_reads = 600
    seed = 12345

    @staticmethod
    def sim_config(memory):
        return SimConfig(memory=memory, target_dram_reads=600, seed=12345)


def test_cache_key_version_unchanged():
    assert CACHE_KEY_VERSION == "v8"


def test_cache_key_format_unchanged():
    """Key layout: version|benchmark|memory|variant|runner|params|reads|
    seed|workload-token|config-digest. A layout change silently
    invalidates every cached result on disk, so it must be deliberate
    (bump the version), never a refactor side effect. v8 was such a
    deliberate bump: it inserted the workload content token (profile
    digest / trace-file sha256) before the config digest."""
    key = spec_cache_key(RunSpec("mcf", "rl"), _KeyConfig)
    parts = key.split("|")
    assert len(parts) == 10
    assert parts[0] == "v8"
    assert parts[1] == "mcf"
    assert parts[2] == "rl"
    assert parts[3] == ""          # variant
    assert parts[4] == ""          # runner
    assert parts[5] == "[]"        # params as sorted JSON
    assert parts[6] == "600"
    assert parts[7] == "12345"
    token = parts[8]               # workload content token
    assert len(token) == 16
    int(token, 16)
    digest = parts[9]
    assert len(digest) == 16
    int(digest, 16)  # hex sha256 prefix

    # Deterministic, and sensitive to what it must be sensitive to.
    assert key == spec_cache_key(RunSpec("mcf", "rl"), _KeyConfig)
    assert key == spec_cache_key(RunSpec("synthetic:mcf", "rl"), _KeyConfig)
    assert key != spec_cache_key(RunSpec("mcf", "ddr3"), _KeyConfig)
    assert key != spec_cache_key(RunSpec("leslie3d", "rl"), _KeyConfig)


# ---------------------------------------------------------------------------
# Event-queue ordering property (hypothesis)
# ---------------------------------------------------------------------------


@st.composite
def schedules(draw):
    """A schedule: per event a (time-offset, cancel?) pair.

    Offsets are small so ties are frequent — tie-breaking by seq is
    exactly what the tuple heap must preserve.
    """
    return draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=7), st.booleans()),
        min_size=0, max_size=40))


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_events_fire_in_time_seq_order(plan):
    queue = EventQueue()
    fired = []
    events = []
    for index, (offset, _cancel) in enumerate(plan):
        events.append(
            (queue.schedule(offset, lambda i=index: fired.append(i)),
             offset))
    cancelled = set()
    for index, (_offset, cancel) in enumerate(plan):
        if cancel:
            events[index][0].cancel()
            cancelled.add(index)

    expected_live = len(plan) - len(cancelled)
    assert len(queue) == expected_live

    executed = queue.run()
    assert executed == expected_live

    # Live events fire in exactly (time, seq) order; seq is insertion
    # order here because nothing is scheduled from inside callbacks.
    expected = [index for index, (offset, _c) in sorted(
        enumerate(plan), key=lambda item: (item[1][0], item[0]))
        if index not in cancelled]
    assert fired == expected
    assert len(queue) == 0


@settings(max_examples=100, deadline=None)
@given(schedules(), st.data())
def test_cancel_after_partial_drain(plan, data):
    """Cancelling mid-drain (outside callbacks) still never fires the
    cancelled event and keeps the live count exact."""
    queue = EventQueue()
    fired = []
    handles = [queue.schedule(offset, lambda i=index: fired.append(i))
               for index, (offset, _c) in enumerate(plan)]
    steps = data.draw(st.integers(min_value=0, max_value=len(plan)))
    for _ in range(steps):
        if not queue.step():
            break
    survivors = [index for index in range(len(plan))
                 if index not in fired]
    late_cancels = {index for index in survivors
                    if data.draw(st.booleans())}
    for index in late_cancels:
        handles[index].cancel()
    queue.run()
    assert late_cancels.isdisjoint(fired)
    expected_tail = [index for index, (offset, _c) in sorted(
        enumerate(plan), key=lambda item: (item[1][0], item[0]))
        if index in survivors and index not in late_cancels]
    assert fired[len(fired) - len(expected_tail):] == expected_tail
